// Tests for the per-rank caching allocator (src/memory/pool_allocator)
// and the Storage layer on top of it: block reuse across steps,
// best-fit with split, coalescing, cross-thread frees (comm-stream
// workers and peer ranks releasing rank-owned buffers), teardown
// draining, and the acceptance invariant that pooling changes no
// numerics — t=2/p=2 training is bit-identical in losses and
// TrafficStats with MLS_ALLOC_POOL on vs off, while the pool serves
// >= 90% of steady-state allocations. The whole suite also runs under
// the asan-ubsan CI job (MLS_ASAN=ON), which checks every pool path is
// ASan- and leak-clean.
#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

#include "comm/spmd.h"
#include "common/memtracker.h"
#include "common/rng.h"
#include "core/env.h"
#include "memory/pool_allocator.h"
#include "model/config.h"
#include "optim/optim.h"
#include "pipeline/executor.h"
#include "tensor/tensor.h"

namespace mls {
namespace {

using memory::PoolAllocator;

// Deliberately tiny geometry so bucket behaviour is exercised with
// byte-sized allocations: 512 B granule, 4 KiB small/large boundary,
// 16 KiB small-pool slabs.
PoolAllocator::Config tiny_cfg() {
  PoolAllocator::Config c;
  c.enabled = true;
  c.round = 512;
  c.small_limit = 4096;
  c.small_segment = 16384;
  c.max_cached = -1;
  c.report_at_exit = false;
  return c;
}

TEST(PoolAllocator, ReuseAcrossSteps) {
  PoolAllocator arena(tiny_cfg(), "reuse");
  float* p1 = arena.allocate(100000);
  arena.deallocate(p1);
  float* p2 = arena.allocate(100000);
  EXPECT_EQ(p1, p2) << "freed block must be recycled";
  const auto s = arena.stats();
  EXPECT_EQ(s.allocs, 2);
  EXPECT_EQ(s.pool_hits, 1);
  EXPECT_EQ(s.pool_misses, 1);
  EXPECT_EQ(s.frees, 1);
  arena.deallocate(p2);
}

TEST(PoolAllocator, SmallRequestsShareASlabAndSplit) {
  PoolAllocator arena(tiny_cfg(), "split");
  float* a = arena.allocate(512);
  auto s = arena.stats();
  // One slab obtained, the request split off its front.
  EXPECT_EQ(s.pool_misses, 1);
  EXPECT_EQ(s.physical_bytes, 16384);
  EXPECT_EQ(s.bytes_in_use, 512);
  EXPECT_EQ(s.bytes_cached, 16384 - 512);
  EXPECT_GE(s.splits, 1);
  // The second small request is carved from the same slab: a hit, no
  // new physical memory.
  float* b = arena.allocate(1024);
  s = arena.stats();
  EXPECT_EQ(s.pool_misses, 1);
  EXPECT_EQ(s.pool_hits, 1);
  EXPECT_EQ(s.physical_bytes, 16384);
  arena.deallocate(a);
  arena.deallocate(b);
}

TEST(PoolAllocator, BestFitPicksSmallestSufficientBlock) {
  PoolAllocator arena(tiny_cfg(), "bestfit");
  // Two large blocks (own segments), freed: free list holds 8192 and
  // 16384. A 6144-byte request must take the 8192 block.
  float* small_seg = arena.allocate(8192);
  float* big_seg = arena.allocate(16384);
  arena.deallocate(small_seg);
  arena.deallocate(big_seg);
  float* p = arena.allocate(6144);
  EXPECT_EQ(p, small_seg);
  const auto s = arena.stats();
  EXPECT_GE(s.splits, 1);  // 8192 -> 6144 + 2048 remainder
  arena.deallocate(p);
}

TEST(PoolAllocator, CoalesceThenTrimReleasesSegments) {
  PoolAllocator arena(tiny_cfg(), "coalesce");
  float* a = arena.allocate(512);
  float* b = arena.allocate(512);
  float* c = arena.allocate(512);
  // Free in an order that exercises both merge directions.
  arena.deallocate(a);
  arena.deallocate(c);
  arena.deallocate(b);
  auto s = arena.stats();
  EXPECT_GE(s.coalesces, 2);
  EXPECT_EQ(s.bytes_in_use, 0);
  EXPECT_EQ(s.bytes_cached, 16384);
  EXPECT_EQ(s.largest_free_block, 16384) << "churn must coalesce fully";
  // Teardown valve: a fully-free segment goes back to the system.
  arena.trim();
  s = arena.stats();
  EXPECT_EQ(s.bytes_cached, 0);
  EXPECT_EQ(s.physical_bytes, 0);
  EXPECT_EQ(s.segments, 0);
}

TEST(PoolAllocator, CrossThreadFreeDrainsIntoOwnerPool) {
  PoolAllocator arena(tiny_cfg(), "xthread");
  float* p = arena.allocate(2048);
  // A foreign thread (stand-in for a comm-stream worker) releases the
  // owner's buffer: it must enqueue, not mutate the pool.
  std::thread([&] { arena.deallocate(p); }).join();
  const auto s = arena.stats();  // drains the pending queue
  EXPECT_EQ(s.cross_thread_frees, 1);
  EXPECT_EQ(s.frees, 1);
  EXPECT_EQ(s.bytes_in_use, 0);
  float* q = arena.allocate(2048);
  EXPECT_EQ(p, q) << "drained buffer must be reusable";
  EXPECT_EQ(arena.stats().pool_hits, 1);
  arena.deallocate(q);
}

TEST(PoolAllocator, PassthroughModeWhenDisabled) {
  PoolAllocator::Config cfg = tiny_cfg();
  cfg.enabled = false;
  PoolAllocator arena(cfg, "passthrough");
  float* p = arena.allocate(4096);
  auto s = arena.stats();
  EXPECT_EQ(s.pool_hits, 0);
  EXPECT_EQ(s.bytes_cached, 0);
  EXPECT_EQ(s.physical_bytes, 4096);
  arena.deallocate(p);
  s = arena.stats();
  EXPECT_EQ(s.physical_bytes, 0) << "disabled pool must not cache";
  EXPECT_EQ(s.bytes_in_use, 0);
}

TEST(PoolAllocator, MaxCachedCapReleasesFreeSegments) {
  PoolAllocator::Config cfg = tiny_cfg();
  cfg.max_cached = 0;  // cache nothing that can be released
  PoolAllocator arena(cfg, "capped");
  float* p = arena.allocate(8192);  // large: its own segment
  EXPECT_EQ(arena.stats().physical_bytes, 8192);
  arena.deallocate(p);
  const auto s = arena.stats();
  EXPECT_EQ(s.bytes_cached, 0);
  EXPECT_EQ(s.physical_bytes, 0);
}

TEST(PoolAllocator, PhysicalPeakTracksHighWater) {
  PoolAllocator arena(tiny_cfg(), "peak");
  float* a = arena.allocate(8192);
  float* b = arena.allocate(8192);
  arena.deallocate(a);
  arena.deallocate(b);
  auto s = arena.stats();
  EXPECT_EQ(s.physical_peak, 16384);
  EXPECT_EQ(s.in_use_peak, 16384);
  EXPECT_EQ(s.bytes_in_use, 0);
  // The in-use axis keeps moving even when requests are pure cache
  // hits — unlike physical_peak, which only tracks segment acquisition.
  arena.reset_physical_peak();
  float* c = arena.allocate(8192);
  s = arena.stats();
  EXPECT_EQ(s.physical_peak, s.physical_bytes) << "no new segment";
  EXPECT_EQ(s.in_use_peak, 8192);
  arena.deallocate(c);
  arena.trim();
  EXPECT_EQ(arena.stats().physical_bytes, 0);
  arena.reset_physical_peak();
  EXPECT_EQ(arena.stats().physical_peak, arena.stats().physical_bytes);
  EXPECT_EQ(arena.stats().in_use_peak, 0);
}

// Tensor-level behaviour uses the thread arena; run on a fresh thread
// so this test owns an isolated pool.
TEST(Storage, TensorReleaseReturnsBufferToPoolUnzeroed) {
  bool same_ptr = false;
  float stale = 0.f;
  int64_t hits = 0;
  std::thread([&] {
    const auto& arena = PoolAllocator::this_thread();
    const auto s0 = arena->stats();
    // > 1 MiB (the default small/large boundary): its own segment.
    Tensor t = Tensor::empty(Shape{{1 << 19}});
    float* p = t.data();
    p[0] = 42.f;
    t.release();  // Appendix B deallocation: bytes go back to the pool
    Tensor u = Tensor::empty(Shape{{1 << 19}});
    same_ptr = (u.data() == p);
    stale = u.data()[0];
    hits = arena->stats().pool_hits - s0.pool_hits;
  }).join();
  EXPECT_TRUE(same_ptr);
  // empty() must hand back uninitialized storage: the recycled block
  // still carries the previous tenant's bytes, proving no memset.
  EXPECT_EQ(stale, 42.f);
  EXPECT_GE(hits, 1);
}

TEST(Storage, MemoryTrackerExposesPhysicalAxis) {
  int64_t before = 0, during = 0, peak = 0;
  std::thread([&] {
    auto& mt = MemoryTracker::instance();
    before = mt.physical_bytes();
    Tensor t = Tensor::zeros(Shape{{1 << 19}});
    during = mt.physical_bytes();
    peak = mt.physical_peak_bytes();
    EXPECT_FALSE(mt.allocator_report().empty());
  }).join();
  EXPECT_GE(during - before, static_cast<int64_t>(sizeof(float)) * (1 << 19));
  EXPECT_GE(peak, during);
}

// A peer rank consuming a mailbox message frees a buffer the sender's
// arena owns: the cross-thread queue must route it home.
TEST(Allocator, MailboxMessageFreedByPeerRank) {
  spmd::run(2, [&](comm::Comm& c) {
    const auto& arena = PoolAllocator::this_thread();
    const auto s0 = arena->stats();
    if (c.rank() == 0) {
      Tensor t = Tensor::full(Shape{{64}}, 3.f);
      c.send(1, /*tag=*/7, t);
    } else {
      Tensor got = c.recv(0, /*tag=*/7);
      EXPECT_EQ(got.data()[0], 3.f);
      got = Tensor();  // drop rank 0's buffer from rank 1's thread
    }
    c.barrier();
    if (c.rank() == 0) {
      const auto s1 = arena->stats();  // drains the pending queue
      EXPECT_GE(s1.cross_thread_frees - s0.cross_thread_frees, 1);
    }
  });
}

// Nonblocking collectives run on the comm-stream worker; their staging
// buffers must come from (and return to) the launching rank's arena.
TEST(Allocator, CommStreamStagingUsesLaunchingRankArena) {
  spmd::run(2, [&](comm::Comm& c) {
    Tensor full = Tensor::full(Shape{{4, 3}}, static_cast<float>(c.rank() + 1));
    const auto& arena = PoolAllocator::this_thread();
    const auto s0 = arena->stats();
    comm::CommHandle h = c.ireduce_scatter(full, 0);
    Tensor mine = h.result();
    EXPECT_EQ(mine.shape(), (Shape{{2, 3}}));
    const auto s1 = arena->stats();
    // The worker allocated the staging clone + result here (ArenaGuard)
    // and released the staging clone from its own thread.
    EXPECT_GT(s1.allocs, s0.allocs);
    EXPECT_GE(s1.cross_thread_frees - s0.cross_thread_frees, 1);
  });
}

// A poisoned run (one rank throws mid-step) must unwind every rank and
// tear the arenas down without leaking — the asan-ubsan CI job runs
// this suite with detect_leaks=1.
TEST(Allocator, PoisonedRunTearsDownCleanly) {
  EXPECT_THROW(
      spmd::run(2,
                [&](comm::Comm& c) {
                  Rng rng(1);
                  Tensor t = Tensor::randn(Shape{{64, 64}}, rng);
                  if (c.rank() == 1) throw std::runtime_error("boom");
                  c.barrier();  // unblocked by the poison
                }),
      std::exception);
}

// ---------------------------------------------------------------------
// Acceptance: pooling is numerically invisible and actually hot.

struct RankTraffic {
  comm::TrafficStats tp, pp, dp;
};

void expect_stats_eq(const comm::TrafficStats& a, const comm::TrafficStats& b,
                     const char* which, int rank) {
  EXPECT_EQ(a.bytes_received, b.bytes_received) << which << " rank " << rank;
  EXPECT_EQ(a.all_reduce_count, b.all_reduce_count) << which << " rank " << rank;
  EXPECT_EQ(a.all_gather_count, b.all_gather_count) << which << " rank " << rank;
  EXPECT_EQ(a.reduce_scatter_count, b.reduce_scatter_count)
      << which << " rank " << rank;
  EXPECT_EQ(a.broadcast_count, b.broadcast_count) << which << " rank " << rank;
  EXPECT_EQ(a.p2p_send_count, b.p2p_send_count) << which << " rank " << rank;
  EXPECT_EQ(a.p2p_bytes_sent, b.p2p_bytes_sent) << which << " rank " << rank;
  EXPECT_EQ(a.p2p_recv_count, b.p2p_recv_count) << which << " rank " << rank;
  EXPECT_EQ(a.p2p_bytes_received, b.p2p_bytes_received)
      << which << " rank " << rank;
}

struct TrainResult {
  std::vector<float> losses;
  std::vector<RankTraffic> traffic;
  std::vector<double> steady_hit_rate;  // per rank, steps 2..n
  std::vector<int64_t> physical_peak;   // per rank
};

// One t=2/p=2 (SP + selective recompute) training run. Selective
// recompute makes every backward replay the attention core, so the
// checkpoint-replay path exercises pooled-buffer reuse each step.
TrainResult train_t2p2(int steps) {
  model::ModelConfig cfg = model::ModelConfig::tiny(2, 4);
  cfg.p = 2;
  cfg.sequence_parallel = true;
  cfg.recompute = core::Recompute::kSelective;
  cfg.global_batch = 4 * cfg.b;
  cfg.validate();

  Rng rng(2026);
  std::vector<std::vector<int64_t>> tokens, targets;
  for (int64_t mb = 0; mb < cfg.total_microbatches(); ++mb) {
    std::vector<int64_t> tok(static_cast<size_t>(cfg.s * cfg.b));
    std::vector<int64_t> tgt(tok.size());
    for (auto& x : tok)
      x = static_cast<int64_t>(rng.next_below(static_cast<uint64_t>(cfg.v)));
    for (auto& x : tgt)
      x = static_cast<int64_t>(rng.next_below(static_cast<uint64_t>(cfg.v)));
    tokens.push_back(std::move(tok));
    targets.push_back(std::move(tgt));
  }

  const int world = cfg.t * cfg.p * cfg.d;
  TrainResult out;
  out.traffic.resize(static_cast<size_t>(world));
  out.steady_hit_rate.resize(static_cast<size_t>(world), 0.0);
  out.physical_peak.resize(static_cast<size_t>(world), 0);
  spmd::run(world, [&](comm::Comm& c) {
    MemoryTracker::instance().reset();
    pipeline::PipelineEngine engine(cfg, c);
    optim::Sgd opt(engine.params(), 0.05f);
    std::vector<float> local;
    const auto& arena = PoolAllocator::this_thread();
    memory::AllocStats warm{};
    for (int step = 0; step < steps; ++step) {
      opt.zero_grad();
      auto stats = engine.run_iteration(tokens, targets, step);
      opt.step();
      local.push_back(stats.loss);
      if (step == 0) warm = arena->stats();  // end of the cold step
    }
    const auto end = arena->stats();
    const int64_t hits = end.pool_hits - warm.pool_hits;
    const int64_t misses = end.pool_misses - warm.pool_misses;
    const int64_t total = hits + misses;
    auto& slot = out.traffic[static_cast<size_t>(c.rank())];
    slot.tp = engine.tp_comm().stats();
    slot.pp = engine.pp_comm().stats();
    slot.dp = engine.dp_comm().stats();
    out.steady_hit_rate[static_cast<size_t>(c.rank())] =
        total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    out.physical_peak[static_cast<size_t>(c.rank())] = end.physical_peak;
    if (c.rank() == 0) out.losses = local;
  });
  return out;
}

TEST(AllocatorTransparency, TrainingBitIdenticalPoolOnVsOff) {
  const int steps = 3;
  core::Env::set("MLS_ALLOC_POOL", "0");
  TrainResult off = train_t2p2(steps);
  core::Env::set("MLS_ALLOC_POOL", "1");
  TrainResult on = train_t2p2(steps);
  core::Env::clear("MLS_ALLOC_POOL");

  // Bitwise loss equality and field-identical traffic: the pool serves
  // bytes, it never touches the math or the collective sequence.
  ASSERT_EQ(off.losses.size(), on.losses.size());
  for (size_t i = 0; i < off.losses.size(); ++i) {
    EXPECT_EQ(off.losses[i], on.losses[i]) << "step " << i;
  }
  ASSERT_EQ(off.traffic.size(), on.traffic.size());
  for (size_t r = 0; r < off.traffic.size(); ++r) {
    expect_stats_eq(off.traffic[r].tp, on.traffic[r].tp, "tp",
                    static_cast<int>(r));
    expect_stats_eq(off.traffic[r].pp, on.traffic[r].pp, "pp",
                    static_cast<int>(r));
    expect_stats_eq(off.traffic[r].dp, on.traffic[r].dp, "dp",
                    static_cast<int>(r));
  }

  for (size_t r = 0; r < on.steady_hit_rate.size(); ++r) {
    // Acceptance: after the cold first step, >= 90% of allocations are
    // served from the pool (includes every checkpoint-replay buffer).
    EXPECT_GE(on.steady_hit_rate[r], 0.90) << "rank " << r;
    EXPECT_GT(on.physical_peak[r], 0) << "rank " << r;
    // Passthrough mode never hits by construction.
    EXPECT_EQ(off.steady_hit_rate[r], 0.0) << "rank " << r;
  }
}

}  // namespace
}  // namespace mls
