// Memory-pressure plane tests (DESIGN.md §14): the budgeted pool
// allocator's structured OOM path, the PressureMonitor watermarks, the
// recompute-escalation governor (unit ladder + t=2/p=2 training with
// bit-identical losses), the serving plane's shed-not-crash behaviors
// (deadlines, queue caps, KV watermarks, byte-budget clamp), and the
// static pressure forecast. The *Chaos* tests read
// MLS_PRESSURE_CHAOS_SEED (echoed) — the CI chaos-oom job's entry.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "analysis/static/budget.h"
#include "analysis/static/trace_serve.h"
#include "comm/spmd.h"
#include "common/memtracker.h"
#include "core/env.h"
#include "fault/inject.h"
#include "fault/plan.h"
#include "memory/pool_allocator.h"
#include "memory/pressure.h"
#include "model/generate.h"
#include "serve/traffic.h"
#include "train/trainer.h"

namespace mls {
namespace {

namespace fs = std::filesystem;

using memory::PoolAllocator;
using memory::PressureConfig;
using memory::PressureLevel;
using memory::PressureMonitor;
using memory::RecomputeGovernor;

class PressureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mls_pressure_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string subdir(const std::string& name) const {
    return (dir_ / name).string();
  }
  fs::path dir_;
};

// Scoped env override (core::Env's programmatic shadow map).
struct EnvVar {
  std::string name;
  EnvVar(const char* n, const std::string& v) : name(n) {
    core::Env::set(name, v);
  }
  ~EnvVar() { core::Env::clear(name); }
};

// Tiny geometry so budget arithmetic works in tens of KiB: 512 B
// granule, 4 KiB small/large boundary (everything below is large and
// gets an exact-size segment).
PoolAllocator::Config arena_cfg(int64_t budget = -1) {
  PoolAllocator::Config c;
  c.enabled = true;
  c.round = 512;
  c.small_limit = 4096;
  c.small_segment = 16384;
  c.max_cached = -1;
  c.budget_bytes = budget;
  c.report_at_exit = false;
  return c;
}

// ------------------------------------------------------------- config

TEST(PressureConfig, DisabledByDefaultAndEnvKnobsActivate) {
  EXPECT_FALSE(PressureConfig::from_env().enabled());

  EnvVar budget("MLS_MEM_BUDGET_BYTES", "1000000");
  EnvVar soft("MLS_MEM_SOFT_PCT", "0.7");
  EnvVar hard("MLS_MEM_HARD_PCT", "0.9");
  EnvVar low("MLS_MEM_LOW_PCT", "0.5");
  EnvVar calm("MLS_MEM_CALM_STEPS", "3");
  const PressureConfig cfg = PressureConfig::from_env();
  EXPECT_TRUE(cfg.enabled());
  EXPECT_EQ(cfg.budget_bytes, 1000000);
  EXPECT_DOUBLE_EQ(cfg.soft_pct, 0.7);
  EXPECT_DOUBLE_EQ(cfg.hard_pct, 0.9);
  EXPECT_DOUBLE_EQ(cfg.low_pct, 0.5);
  EXPECT_EQ(cfg.calm_steps, 3);
  EXPECT_EQ(cfg.soft_bytes(), 700000);
  EXPECT_EQ(cfg.hard_bytes(), 900000);
  EXPECT_EQ(cfg.low_bytes(), 500000);
}

TEST(PressureConfig, MisorderedWatermarksAreRejected) {
  EnvVar budget("MLS_MEM_BUDGET_BYTES", "1000000");
  EnvVar soft("MLS_MEM_SOFT_PCT", "0.9");
  EnvVar hard("MLS_MEM_HARD_PCT", "0.8");  // hard below soft
  EXPECT_THROW(PressureConfig::from_env(), Error);
}

// -------------------------------------------------- allocator OOM path

TEST(AllocatorBudget, ExceededBudgetThrowsStructuredError) {
  PoolAllocator arena(arena_cfg(/*budget=*/65536), "budgeted");
  try {
    arena.allocate(131072);  // 2x the budget: no trim can save this
    FAIL() << "allocation over budget must throw MemoryPressureError";
  } catch (const memory::MemoryPressureError& e) {
    EXPECT_EQ(e.requested_bytes(), 131072);
    EXPECT_EQ(e.stats().budget_bytes, 65536);
    EXPECT_EQ(e.stats().oom_failures, 1);
    EXPECT_EQ(e.stats().bytes_in_use, 0);
    EXPECT_NE(std::string(e.what()).find("budget"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(arena.stats().oom_failures, 1);

  // The failure left the arena usable: an in-budget request succeeds.
  float* p = arena.allocate(4096 + 512);  // large bucket, exact segment
  arena.deallocate(p);
}

TEST(AllocatorBudget, TrimOfCachedSegmentsAnswersPressure) {
  PoolAllocator arena(arena_cfg(/*budget=*/65536), "trimmer");
  // 40 KiB live, then freed: the segment stays cached. A 48 KiB
  // request cannot reuse it (too small) and a fresh segment would put
  // physical at 88 KiB > 64 KiB — the trim valve must release the
  // cached 40 KiB so the retry fits.
  float* a = arena.allocate(40960);
  arena.deallocate(a);
  EXPECT_EQ(arena.stats().bytes_cached, 40960);
  float* b = arena.allocate(49152);
  const auto st = arena.stats();
  EXPECT_EQ(st.oom_trims, 1);
  EXPECT_EQ(st.oom_failures, 0);
  EXPECT_EQ(st.physical_bytes, 49152);
  arena.deallocate(b);
}

TEST(AllocatorBudget, InjectedAllocOomFailsOnceThenRecovers) {
  fault::FaultPlan plan;
  plan.events.push_back({.kind = fault::FaultKind::kOom,
                         .rank = -1,
                         .site = "alloc"});
  fault::ScopedPlan armed(plan);
  PoolAllocator arena(arena_cfg(), "chaos");  // no budget: fault-only
  EXPECT_THROW(arena.allocate(8192), memory::MemoryPressureError);
  EXPECT_EQ(arena.stats().oom_failures, 1);
  float* p = arena.allocate(8192);  // the event is spent
  arena.deallocate(p);
}

// ------------------------------------------------------------ monitor

TEST(Monitor, ClassifiesPhysicalBytesAgainstWatermarks) {
  MemoryTracker::instance().reset();
  auto arena = std::make_shared<PoolAllocator>(arena_cfg(), "watch");
  PressureConfig cfg;
  cfg.budget_bytes = 8 << 20;  // low 4.8 MiB, soft 6.4 MiB, hard 7.6 MiB
  PressureMonitor mon(cfg, arena);

  const int64_t chunk = 2 << 20;
  float* a = arena->allocate(chunk);
  float* b = arena->allocate(chunk);
  float* c = arena->allocate(chunk);
  EXPECT_EQ(mon.sample(), PressureLevel::kNone);  // 6 MiB: low <= x < soft

  float* d = arena->allocate(chunk);
  EXPECT_EQ(mon.sample(), PressureLevel::kHard);  // 8 MiB >= hard
  EXPECT_EQ(mon.sample(), PressureLevel::kHard);  // steady state, one edge
  EXPECT_EQ(MemoryTracker::instance().pressure_soft_events(), 1);
  EXPECT_EQ(MemoryTracker::instance().pressure_hard_events(), 1);

  arena->deallocate(d);
  arena->trim();
  EXPECT_EQ(mon.sample(), PressureLevel::kNone);  // back to 6 MiB
  arena->deallocate(c);
  arena->trim();
  EXPECT_EQ(mon.sample(), PressureLevel::kLow);  // 4 MiB < low
  arena->deallocate(a);
  arena->deallocate(b);
}

TEST(Monitor, InjectedPressureSitesForceTheSampledLevel) {
  fault::FaultPlan plan;
  plan.events.push_back({.kind = fault::FaultKind::kOom,
                         .rank = -1,
                         .site = "pressure.hard"});
  plan.events.push_back({.kind = fault::FaultKind::kOom,
                         .rank = -1,
                         .site = "pressure.soft",
                         .fails = 2});
  fault::ScopedPlan armed(plan);
  auto arena = std::make_shared<PoolAllocator>(arena_cfg(), "forced");
  PressureConfig cfg;
  cfg.budget_bytes = 1 << 30;  // an empty arena would always read kLow
  PressureMonitor mon(cfg, arena);
  EXPECT_EQ(mon.sample(), PressureLevel::kHard);
  EXPECT_EQ(mon.sample(), PressureLevel::kSoft);
  EXPECT_EQ(mon.sample(), PressureLevel::kSoft);
  EXPECT_EQ(mon.sample(), PressureLevel::kLow);  // plan exhausted
}

// ----------------------------------------------------------- governor

PressureConfig gov_cfg(int calm = 2) {
  PressureConfig cfg;
  cfg.budget_bytes = 1 << 20;
  cfg.calm_steps = calm;
  return cfg;
}

TEST(Governor, SoftClimbsOneRungAndHardJumpsToFull) {
  RecomputeGovernor gov(gov_cfg(), core::Recompute::kNone);
  EXPECT_EQ(gov.on_level(PressureLevel::kSoft), core::Recompute::kSelective);
  EXPECT_EQ(gov.on_level(PressureLevel::kSoft), core::Recompute::kFull);
  EXPECT_EQ(gov.on_level(PressureLevel::kSoft), core::Recompute::kFull);
  EXPECT_EQ(gov.stats().escalations, 2);
  EXPECT_EQ(gov.stats().soft_trips, 3);

  RecomputeGovernor jump(gov_cfg(), core::Recompute::kNone);
  EXPECT_EQ(jump.on_level(PressureLevel::kHard), core::Recompute::kFull);
  EXPECT_EQ(jump.stats().escalations, 1);
  EXPECT_EQ(jump.stats().hard_trips, 1);
}

TEST(Governor, DeescalatesOnlyAfterCalmStepsAndNoneHolds) {
  RecomputeGovernor gov(gov_cfg(/*calm=*/2), core::Recompute::kNone);
  gov.on_level(PressureLevel::kHard);  // -> kFull
  EXPECT_EQ(gov.on_level(PressureLevel::kLow), core::Recompute::kFull);
  // kNone is the hysteresis band: it resets the calm counter.
  EXPECT_EQ(gov.on_level(PressureLevel::kNone), core::Recompute::kFull);
  EXPECT_EQ(gov.on_level(PressureLevel::kLow), core::Recompute::kFull);
  EXPECT_EQ(gov.on_level(PressureLevel::kLow), core::Recompute::kSelective);
  EXPECT_EQ(gov.on_level(PressureLevel::kLow), core::Recompute::kSelective);
  EXPECT_EQ(gov.on_level(PressureLevel::kLow), core::Recompute::kNone);
  // At the floor further calm samples change nothing.
  EXPECT_EQ(gov.on_level(PressureLevel::kLow), core::Recompute::kNone);
  EXPECT_EQ(gov.stats().deescalations, 2);
}

TEST(Governor, NeverDescendsBelowTheConfiguredFloor) {
  RecomputeGovernor gov(gov_cfg(/*calm=*/1), core::Recompute::kSelective);
  EXPECT_EQ(gov.current(), core::Recompute::kSelective);
  gov.on_level(PressureLevel::kHard);  // -> kFull
  EXPECT_EQ(gov.on_level(PressureLevel::kLow), core::Recompute::kSelective);
  EXPECT_EQ(gov.on_level(PressureLevel::kLow), core::Recompute::kSelective);
  EXPECT_EQ(gov.floor(), core::Recompute::kSelective);
}

// ------------------------------------------------- training escalation

// Pre-draws per-step microbatch sets so every run trains on the same
// data (same helper shape as test_fault).
std::vector<std::vector<data::Batch>> make_steps(const model::ModelConfig& cfg,
                                                 int total) {
  data::MarkovDataset ds(cfg.v, 1.0, 5);
  std::vector<std::vector<data::Batch>> steps;
  for (int i = 0; i < total; ++i) {
    steps.push_back(data::make_microbatches(ds, cfg));
  }
  return steps;
}

// t=2, p=2 (4 ranks), recompute floor kNone so the whole ladder is in
// play.
model::ModelConfig grid_config() {
  model::ModelConfig cfg = model::ModelConfig::tiny(2, 4);
  cfg.p = 2;
  cfg.sequence_parallel = true;
  cfg.recompute = core::Recompute::kNone;
  cfg.global_batch = 2 * cfg.b;
  return cfg;
}

struct TrainOut {
  std::vector<float> losses;
  std::vector<core::Recompute> recompute;
  RecomputeGovernor::Stats gov;
};

// Plain (non-elastic) training on every rank thread; rank 0's log.
TrainOut run_training(const model::ModelConfig& cfg, int64_t budget_bytes,
                      const std::vector<std::vector<data::Batch>>& steps) {
  const int n = cfg.t * cfg.p * cfg.d;
  TrainOut out;
  spmd::run(n, [&](comm::Comm& world) {
    train::TrainerOptions topts;
    topts.lr = 1e-3f;
    topts.pressure.budget_bytes = budget_bytes;
    train::Trainer t(cfg, world, topts);
    std::vector<float> losses;
    std::vector<core::Recompute> rcs;
    for (const auto& mb : steps) {
      const auto r = t.step(mb);
      losses.push_back(r.loss);
      rcs.push_back(r.recompute);
    }
    if (world.rank() == 0) {
      out.losses = std::move(losses);
      out.recompute = std::move(rcs);
      if (t.governor() != nullptr) out.gov = t.governor()->stats();
    }
  });
  return out;
}

void expect_same_losses(const std::vector<float>& a,
                        const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i], b[i]) << "step " << i;
  }
}

TEST(TrainingPressure, EscalationLadderIsLockstepAndBitIdentical) {
  const auto cfg = grid_config();
  const auto steps = make_steps(cfg, 6);
  const auto ref = run_training(cfg, /*budget=*/-1, steps);
  for (const auto rc : ref.recompute) {
    EXPECT_EQ(rc, core::Recompute::kNone);
  }

  // Rank 0 alone reads soft pressure for two steps; the all_reduce-Max
  // agreement must escalate every rank in lockstep, and the huge budget
  // makes every honest sample kLow, so hysteresis then walks the ladder
  // back down: none -> selective -> full -> (2 calm) selective ->
  // (2 calm) none.
  fault::FaultPlan plan;
  plan.events.push_back({.kind = fault::FaultKind::kOom,
                         .rank = 0,
                         .site = "pressure.soft",
                         .fails = 2});
  fault::ScopedPlan armed(plan);
  const auto res = run_training(cfg, /*budget=*/int64_t{1} << 40, steps);
  expect_same_losses(ref.losses, res.losses);
  const std::vector<core::Recompute> want = {
      core::Recompute::kSelective, core::Recompute::kFull,
      core::Recompute::kFull,      core::Recompute::kSelective,
      core::Recompute::kSelective, core::Recompute::kNone};
  ASSERT_EQ(res.recompute.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(res.recompute[i], want[i]) << "step " << i;
  }
  EXPECT_EQ(res.gov.steps, 6);
  EXPECT_EQ(res.gov.soft_trips, 2);
  EXPECT_EQ(res.gov.hard_trips, 0);
  EXPECT_EQ(res.gov.escalations, 2);
  EXPECT_EQ(res.gov.deescalations, 2);
}

TEST(TrainingPressure, HardTripJumpsStraightToFull) {
  const auto cfg = grid_config();
  const auto steps = make_steps(cfg, 2);
  const auto ref = run_training(cfg, /*budget=*/-1, steps);

  fault::FaultPlan plan;
  plan.events.push_back({.kind = fault::FaultKind::kOom,
                         .rank = 3,
                         .site = "pressure.hard"});
  fault::ScopedPlan armed(plan);
  const auto res = run_training(cfg, /*budget=*/int64_t{1} << 40, steps);
  expect_same_losses(ref.losses, res.losses);
  ASSERT_EQ(res.recompute.size(), 2u);
  EXPECT_EQ(res.recompute[0], core::Recompute::kFull);
  EXPECT_EQ(res.gov.hard_trips, 1);
}

// The CI chaos-oom gate: a seeded random plan mixing forced pressure
// levels (escalations) with hard alloc failures (restart + replay via
// the elastic runner), on the t=2/p=2 grid. The run must finish with
// losses bit-identical to a pressure-free, fault-free reference.
TEST_F(PressureTest, ChaosOomPlanTrainsBitIdentical) {
  const uint64_t seed = static_cast<uint64_t>(
      core::Env::integer("MLS_PRESSURE_CHAOS_SEED", 20260809));
  const auto cfg = grid_config();
  const int total = 4;
  const int world = cfg.t * cfg.p * cfg.d;
  const auto steps = make_steps(cfg, total);

  const auto run_elastic = [&](const std::string& ckpt_dir, int64_t budget) {
    fault::Rendezvous rdv(world);
    train::ResilientResult out;
    spmd::run(world, [&](comm::Comm& w) {
      train::TrainerOptions topts;
      topts.lr = 1e-3f;
      topts.pressure.budget_bytes = budget;
      train::ResilientOptions ropts;
      ropts.ckpt_dir = ckpt_dir;
      auto res = train::run_resilient(cfg, rdv, w.rank(), topts, ropts, steps);
      if (w.rank() == 0) out = std::move(res);
    });
    return out;
  };
  const auto ref = run_elastic(subdir("ref"), /*budget=*/-1);
  ASSERT_EQ(ref.restarts, 0);

  std::mt19937_64 rng(seed);
  fault::FaultPlan plan;
  const char* sites[] = {"pressure.soft", "pressure.hard"};
  const int pressure_events = 2 + static_cast<int>(rng() % 3);
  for (int i = 0; i < pressure_events; ++i) {
    plan.events.push_back(
        {.kind = fault::FaultKind::kOom,
         .rank = static_cast<int>(rng() % static_cast<uint64_t>(world)),
         .step = static_cast<int64_t>(rng() % total),
         .site = sites[rng() % 2],
         .fails = 1 + static_cast<int>(rng() % 3)});
  }
  const int alloc_events = 1 + static_cast<int>(rng() % 2);
  for (int i = 0; i < alloc_events; ++i) {
    plan.events.push_back(
        {.kind = fault::FaultKind::kOom,
         .rank = static_cast<int>(rng() % static_cast<uint64_t>(world)),
         .step = static_cast<int64_t>(rng() % total),
         .site = "alloc"});
  }
  std::fprintf(stderr, "[chaos-oom] seed=%llu plan=%s\n",
               static_cast<unsigned long long>(seed), plan.str().c_str());

  fault::ScopedPlan armed(plan);
  const auto res = run_elastic(subdir("chaos"), /*budget=*/int64_t{1} << 40);
  EXPECT_GE(res.restarts, 1);  // every alloc oom is a hard mid-step fault
  EXPECT_LE(res.restarts, 8);
  for (const auto& reason : res.failure_reasons) {
    EXPECT_NE(reason.find("memory pressure"), std::string::npos) << reason;
  }
  expect_same_losses(ref.losses, res.losses);
}

// ------------------------------------------------------------- serving

using model::ModelConfig;
using serve::ContinuousBatchScheduler;
using serve::FinishReason;
using serve::Request;
using serve::ServeConfig;

std::vector<Request> small_requests(const ModelConfig& cfg, int64_t n,
                                    int64_t max_new) {
  std::vector<Request> reqs;
  for (int64_t i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    for (int64_t j = 0; j <= i % 3; ++j) r.prompt.push_back((5 + 3 * j + 7 * i) % cfg.v);
    r.max_new_tokens = max_new;
    r.temperature = (i % 2 == 0) ? 0.0f : 0.8f;
    r.seed = 50 + static_cast<uint64_t>(i);
    reqs.push_back(std::move(r));
  }
  return reqs;
}

std::vector<int64_t> generate_reference(model::GPTModel& m, const Request& r) {
  model::GenerateOptions o;
  o.max_new_tokens = r.max_new_tokens;
  o.temperature = r.temperature;
  o.seed = r.seed;
  return model::generate(m, r.prompt, o);
}

struct ServeResult {
  std::map<int64_t, std::vector<int64_t>> tokens;
  std::map<int64_t, FinishReason> reasons;
  serve::SchedStats stats;
  serve::KVStats kv;
};

ServeResult serve_all(model::GPTModel& m, const ServeConfig& scfg,
                      const std::vector<Request>& reqs) {
  ContinuousBatchScheduler sched(m, scfg);
  for (const Request& r : reqs) sched.submit(r);
  ServeResult res;
  int64_t guard = 0;
  while (!sched.idle()) {
    MLS_CHECK_LT(guard++, 100000) << "scheduler did not drain";
    for (auto& c : sched.step()) {
      res.reasons[c.request.id] = c.reason;
      res.tokens[c.request.id] = std::move(c.tokens);
    }
  }
  res.stats = sched.stats();
  res.kv = sched.kv_stats();
  return res;
}

TEST(ServePressure, DeadlineRetiresRunningRequestAsTimedOut) {
  ModelConfig cfg = ModelConfig::tiny(1, 2);
  cfg.b = 1;
  spmd::run(1, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    MemoryTracker::instance().reset();
    Request r;
    r.id = 0;
    r.prompt = {1, 2};
    r.max_new_tokens = 12;
    r.deadline_steps = 4;  // expires mid-decode

    ServeConfig scfg;
    scfg.block_tokens = 4;
    scfg.kv_budget_tokens = 64;
    const auto got = serve_all(m, scfg, {r});
    EXPECT_EQ(got.reasons.at(0), FinishReason::kTimedOut);
    EXPECT_GE(got.tokens.at(0).size(), r.prompt.size());
    EXPECT_LT(got.tokens.at(0).size(),
              r.prompt.size() + static_cast<size_t>(r.max_new_tokens));
    EXPECT_EQ(got.stats.timed_out, 1);
    EXPECT_EQ(MemoryTracker::instance().timed_out_requests(), 1);
    // The timed-out sequence's blocks came back that step.
    EXPECT_EQ(got.kv.blocks_free, got.kv.blocks_total);
  });
}

TEST(ServePressure, DeadlineExpiresQueuedRequestUntouched) {
  ModelConfig cfg = ModelConfig::tiny(1, 2);
  cfg.b = 1;
  spmd::run(1, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    Request a;  // hogs the single batch slot
    a.id = 0;
    a.prompt = {3};
    a.max_new_tokens = 8;
    Request b;  // dies in the queue before a slot opens
    b.id = 1;
    b.prompt = {4, 5};
    b.max_new_tokens = 4;
    b.deadline_steps = 2;

    ServeConfig scfg;
    scfg.block_tokens = 4;
    scfg.kv_budget_tokens = 64;
    scfg.max_batch = 1;
    const auto got = serve_all(m, scfg, {a, b});
    EXPECT_EQ(got.reasons.at(0), FinishReason::kCompleted);
    EXPECT_EQ(got.reasons.at(1), FinishReason::kTimedOut);
    EXPECT_EQ(got.tokens.at(1), b.prompt);  // never admitted, never decoded
    EXPECT_EQ(got.stats.timed_out, 1);
  });
}

TEST(ServePressure, QueueCapShedsNewestFirst) {
  ModelConfig cfg = ModelConfig::tiny(1, 2);
  cfg.b = 1;
  spmd::run(1, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    MemoryTracker::instance().reset();
    const auto reqs = small_requests(cfg, 5, /*max_new=*/4);

    ServeConfig scfg;
    scfg.block_tokens = 4;
    scfg.kv_budget_tokens = 64;
    scfg.max_batch = 1;
    scfg.max_queue = 2;
    const auto got = serve_all(m, scfg, reqs);
    // Oldest submissions survive; the newest three are shed, determin-
    // istically, before any decode work is spent on them.
    EXPECT_EQ(got.reasons.at(0), FinishReason::kCompleted);
    EXPECT_EQ(got.reasons.at(1), FinishReason::kCompleted);
    EXPECT_EQ(got.reasons.at(2), FinishReason::kShed);
    EXPECT_EQ(got.reasons.at(3), FinishReason::kShed);
    EXPECT_EQ(got.reasons.at(4), FinishReason::kShed);
    EXPECT_EQ(got.stats.shed, 3);
    EXPECT_EQ(MemoryTracker::instance().shed_requests(), 3);
    for (int64_t id = 2; id < 5; ++id) {
      EXPECT_EQ(got.tokens.at(id), reqs[static_cast<size_t>(id)].prompt);
    }
  });
}

TEST(ServePressure, SoftWatermarkThrottlesAdmissionUntilRoomFrees) {
  ModelConfig cfg = ModelConfig::tiny(1, 2);
  cfg.b = 1;
  spmd::run(1, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    Request a;
    a.id = 0;
    a.prompt = {1, 2};
    a.max_new_tokens = 6;
    Request b;
    b.id = 1;
    b.prompt = {3};
    b.max_new_tokens = 5;
    const auto ref_a = generate_reference(m, a);
    const auto ref_b = generate_reference(m, b);

    ServeConfig scfg;
    scfg.block_tokens = 4;
    scfg.kv_budget_tokens = 8;  // 2 blocks
    scfg.soft_pct = 0.5;        // one attached block gates admission
    ContinuousBatchScheduler sched(m, scfg);
    sched.submit(a);
    ServeResult got;
    int64_t guard = 0;
    const auto drain_step = [&]() {
      for (auto& comp : sched.step()) {
        got.reasons[comp.request.id] = comp.reason;
        got.tokens[comp.request.id] = std::move(comp.tokens);
      }
    };
    drain_step();  // admits a; occupancy is now at/above soft
    sched.submit(b);
    while (!sched.idle()) {
      MLS_CHECK_LT(guard++, 100000) << "scheduler did not drain";
      drain_step();
    }
    EXPECT_EQ(got.reasons.at(0), FinishReason::kCompleted);
    EXPECT_EQ(got.reasons.at(1), FinishReason::kCompleted);
    EXPECT_EQ(got.tokens.at(0), ref_a);
    EXPECT_EQ(got.tokens.at(1), ref_b);
    EXPECT_GT(sched.stats().throttled_steps, 0)
        << "b should have waited out a's occupancy";
  });
}

TEST(ServePressure, HardWatermarkPreemptsBackUnderAndTokensMatch) {
  ModelConfig cfg = ModelConfig::tiny(1, 2);
  cfg.b = 1;
  spmd::run(1, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    const auto reqs = small_requests(cfg, 3, /*max_new=*/6);
    std::map<int64_t, std::vector<int64_t>> ref;
    for (const auto& r : reqs) ref[r.id] = generate_reference(m, r);

    ServeConfig scfg;
    scfg.block_tokens = 4;
    scfg.kv_budget_tokens = 16;  // 4 blocks across 3 growing sequences
    scfg.soft_pct = 0.75;        // validate() requires soft <= hard
    scfg.hard_pct = 0.75;
    const auto got = serve_all(m, scfg, reqs);
    EXPECT_GT(got.stats.pressure_preemptions, 0)
        << "the hard watermark should have evicted at least once";
    for (const auto& r : reqs) {
      EXPECT_EQ(got.reasons.at(r.id), FinishReason::kCompleted);
      EXPECT_EQ(got.tokens.at(r.id), ref.at(r.id)) << "request " << r.id;
    }
  });
}

TEST(ServePressure, ByteBudgetClampsKvTokensAndPeakStaysUnder) {
  ModelConfig cfg = ModelConfig::tiny(1, 2);
  cfg.b = 1;
  spmd::run(1, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    ServeConfig scfg;
    scfg.block_tokens = 4;
    scfg.kv_budget_tokens = 4096;  // the byte ceiling must win
    const auto layout = verify::kv_layout_of(cfg, scfg.block_tokens);
    scfg.mem_budget_bytes = layout.logical_bytes_per_token() * 32;
    ContinuousBatchScheduler sched(m, scfg);
    EXPECT_LE(sched.config().kv_budget_tokens, 32);
    EXPECT_GE(sched.config().kv_budget_tokens, scfg.block_tokens);

    for (const auto& r : small_requests(cfg, 4, /*max_new=*/6)) {
      sched.submit(r);
    }
    int64_t guard = 0;
    int64_t completed = 0;
    while (!sched.idle()) {
      MLS_CHECK_LT(guard++, 100000) << "scheduler did not drain";
      completed += static_cast<int64_t>(sched.step().size());
    }
    EXPECT_EQ(completed, 4);
    EXPECT_LE(sched.kv_stats().reserved_peak, scfg.mem_budget_bytes)
        << "logical KV peak must respect MLS_MEM_BUDGET_BYTES";
  });
}

// Seeded chaos at the kv.block site: injected reservation failures are
// indistinguishable from a dry pool — the scheduler preempts and
// replays, and every output token still matches generate().
TEST(ServePressureChaos, InjectedKvBlockOomKeepsTokensIdentical) {
  const uint64_t seed = static_cast<uint64_t>(
      core::Env::integer("MLS_PRESSURE_CHAOS_SEED", 20260809));
  const int fails = 1 + static_cast<int>(seed % 4);
  std::fprintf(stderr, "[chaos-oom] seed=%llu kv.block fails=%d\n",
               static_cast<unsigned long long>(seed), fails);
  ModelConfig cfg = ModelConfig::tiny(1, 2);
  cfg.b = 1;
  spmd::run(1, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    const auto reqs = small_requests(cfg, 4, /*max_new=*/6);
    std::map<int64_t, std::vector<int64_t>> ref;
    for (const auto& r : reqs) ref[r.id] = generate_reference(m, r);

    fault::FaultPlan plan;
    plan.events.push_back({.kind = fault::FaultKind::kOom,
                           .rank = -1,
                           .site = "kv.block",
                           .fails = fails});
    fault::ScopedPlan armed(plan);
    ServeConfig scfg;
    scfg.block_tokens = 4;
    scfg.kv_budget_tokens = 64;
    const auto got = serve_all(m, scfg, reqs);
    EXPECT_GT(got.kv.reserve_failures, 0);
    for (const auto& r : reqs) {
      EXPECT_EQ(got.reasons.at(r.id), FinishReason::kCompleted);
      EXPECT_EQ(got.tokens.at(r.id), ref.at(r.id)) << "request " << r.id;
    }
  });
}

// ------------------------------------------------------------ forecast

TEST(Forecast, RungsShrinkResidencyAndVerdictsTrackTheBudget) {
  model::ModelConfig cfg = model::ModelConfig::tiny(1, 2);
  cfg.recompute = core::Recompute::kNone;

  // Probe run (any budget) to learn the per-rung residents.
  const auto probe = verify::forecast_pressure(cfg, int64_t{1} << 40);
  EXPECT_GT(probe.resident_bytes[0], probe.resident_bytes[1]);
  EXPECT_GT(probe.resident_bytes[1], probe.resident_bytes[2]);
  EXPECT_EQ(probe.configured_rung, 0);
  EXPECT_FALSE(probe.can_trip_soft);
  EXPECT_EQ(probe.floor_rung, 0);
  EXPECT_NE(probe.text().find("stays under"), std::string::npos);

  // Budget slightly above the kNone resident: the configured rung trips
  // soft (but not hard) and the governor settles on a cheaper rung.
  const auto tight = verify::forecast_pressure(
      cfg, static_cast<int64_t>(probe.resident_bytes[0] / 0.9) + 1);
  EXPECT_TRUE(tight.can_trip_soft);
  EXPECT_FALSE(tight.can_trip_hard);
  EXPECT_GE(tight.floor_rung, 1);
  EXPECT_TRUE(tight.fits_at_full);
  EXPECT_NE(tight.text().find("soft watermark"), std::string::npos);

  // Budget below even the full-recompute resident: nothing fits.
  const auto hopeless = verify::forecast_pressure(
      cfg, static_cast<int64_t>(probe.resident_bytes[2] / 0.96));
  EXPECT_TRUE(hopeless.can_trip_hard);
  EXPECT_FALSE(hopeless.fits_at_full);
  EXPECT_EQ(hopeless.floor_rung, -1);
  EXPECT_NE(hopeless.text().find("no rung fits"), std::string::npos);
}

TEST(Forecast, LevelNamesAreStable) {
  EXPECT_STREQ(memory::pressure_level_name(PressureLevel::kLow), "low");
  EXPECT_STREQ(memory::pressure_level_name(PressureLevel::kNone), "none");
  EXPECT_STREQ(memory::pressure_level_name(PressureLevel::kSoft), "soft");
  EXPECT_STREQ(memory::pressure_level_name(PressureLevel::kHard), "hard");
}

}  // namespace
}  // namespace mls
