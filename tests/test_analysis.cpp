// Tests for the comm-correctness analyzer (src/analysis): cross-rank
// collective matching (wrong op / wrong count / skewed order /
// blocking-vs-nonblocking, and the paper's g-vs-f̄ confusion when
// sequence parallelism is enabled on only some ranks), the hang
// watchdog + flight recorder, the leaked-CommHandle audit, and the
// acceptance invariant that the analyzer changes no losses and no
// TrafficStats when everything is well-formed.
//
// None of the negative-path tests may ever deadlock: the analyzer's
// whole point is that the failing rank throws a structured diagnostic
// and poisons its peers within the watchdog deadline.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "analysis/ledger.h"
#include "comm/spmd.h"
#include "common/memtracker.h"
#include "common/rng.h"
#include "core/collectives.h"
#include "optim/optim.h"
#include "pipeline/executor.h"

namespace mls {
namespace {

using analysis::Options;
using analysis::ScopedOptions;
using analysis::SiteGuard;

Options validate_only() {
  Options o;
  o.validate = true;
  o.watchdog = false;
  o.watchdog_sec = 5.0;  // bounds the validator's publish-stall wait
  return o;
}

// Runs the SPMD body and returns the error message it must produce.
std::string run_expect_error(int t, const std::function<void(comm::Comm&)>& fn) {
  try {
    spmd::run(t, fn);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected the analyzer to throw";
  return "";
}

// ------------------------------------------- cross-rank mismatch paths

TEST(CollectiveMatching, WrongOpKindNamesBothCallSites) {
  ScopedOptions opts(validate_only());
  const std::string msg = run_expect_error(2, [](comm::Comm& c) {
    Tensor x = Tensor::full(Shape{{4}}, 1.0f);
    if (c.rank() == 0) {
      SiteGuard sg("test.rank0_reduce");
      c.all_reduce(x);
    } else {
      SiteGuard sg("test.rank1_gather");
      c.all_gather(x, 0);
    }
  });
  EXPECT_NE(msg.find("collective mismatch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("test.rank0_reduce"), std::string::npos) << msg;
  EXPECT_NE(msg.find("test.rank1_gather"), std::string::npos) << msg;
  EXPECT_NE(msg.find("all_reduce"), std::string::npos) << msg;
  EXPECT_NE(msg.find("all_gather"), std::string::npos) << msg;
}

TEST(CollectiveMatching, WrongReduceOpIsDetected) {
  ScopedOptions opts(validate_only());
  const std::string msg = run_expect_error(2, [](comm::Comm& c) {
    SiteGuard sg(c.rank() == 0 ? "test.sum_side" : "test.max_side");
    Tensor x = Tensor::full(Shape{{4}}, 1.0f);
    c.all_reduce(x, c.rank() == 0 ? comm::ReduceOp::Sum : comm::ReduceOp::Max);
  });
  EXPECT_NE(msg.find("collective mismatch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("op=sum"), std::string::npos) << msg;
  EXPECT_NE(msg.find("op=max"), std::string::npos) << msg;
}

TEST(CollectiveMatching, WrongElementCountIsDetected) {
  ScopedOptions opts(validate_only());
  const std::string msg = run_expect_error(2, [](comm::Comm& c) {
    SiteGuard sg("test.count_skew");
    Tensor x = Tensor::full(Shape{{c.rank() == 0 ? 4 : 8}}, 1.0f);
    c.all_reduce(x);
  });
  EXPECT_NE(msg.find("collective mismatch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("count=4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("count=8"), std::string::npos) << msg;
}

TEST(CollectiveMatching, SkewedOrderFailsAtFirstDivergentCall) {
  // Rank 0: barrier; all_reduce.  Rank 1: all_reduce; barrier.
  // Seq 0 already diverges, and the report carries the per-rank tail.
  ScopedOptions opts(validate_only());
  const std::string msg = run_expect_error(2, [](comm::Comm& c) {
    Tensor x = Tensor::full(Shape{{4}}, 1.0f);
    if (c.rank() == 0) {
      SiteGuard sg("test.order_rank0");
      c.barrier();
      c.all_reduce(x);
    } else {
      SiteGuard sg("test.order_rank1");
      c.all_reduce(x);
      c.barrier();
    }
  });
  EXPECT_NE(msg.find("collective mismatch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("seq 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("barrier"), std::string::npos) << msg;
  EXPECT_NE(msg.find("all_reduce"), std::string::npos) << msg;
}

TEST(CollectiveMatching, BlockingVsNonblockingMixIsDetected) {
  // Same op, same payload — but rank 1 issues it through the i* path.
  // On real NCCL this ordering hazard deadlocks streams; here it must
  // surface as a structured error on the handle.
  ScopedOptions opts(validate_only());
  const std::string msg = run_expect_error(2, [](comm::Comm& c) {
    Tensor x = Tensor::full(Shape{{4}}, 1.0f);
    if (c.rank() == 0) {
      SiteGuard sg("test.blocking_side");
      c.all_reduce(x);
    } else {
      SiteGuard sg("test.nonblocking_side");
      comm::CommHandle h = c.iall_reduce(x);
      h.wait();
    }
  });
  EXPECT_NE(msg.find("collective mismatch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("[blocking]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("[nonblocking]"), std::string::npos) << msg;
}

TEST(CollectiveMatching, SequenceParallelOnOneRankOnly) {
  // The paper-level failure mode (§4.2.2): rank 0 thinks the layer
  // boundary is g (all-gather of its sequence shard), rank 1 thinks it
  // is f̄ (all-reduce of the full activation). The report must name the
  // conjugate-pair call sites, not just raw collective kinds.
  ScopedOptions opts(validate_only());
  const std::string msg = run_expect_error(2, [](comm::Comm& c) {
    if (c.rank() == 0) {
      ag::Var x(Tensor::full(Shape{{2, 1, 4}}, 1.0f), /*requires_grad=*/false);
      core::gather_from_sequence_parallel(x, c);
    } else {
      ag::Var x(Tensor::full(Shape{{4, 1, 4}}, 1.0f), /*requires_grad=*/false);
      core::reduce_from_tensor_parallel(x, c);
    }
  });
  EXPECT_NE(msg.find("collective mismatch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("g(gather_from_sp).fwd"), std::string::npos) << msg;
  EXPECT_NE(msg.find("f̄(reduce_from_tp).fwd"), std::string::npos) << msg;
}

TEST(CollectiveMatching, MissingCollectiveOnRankZeroReportsStall) {
  // Rank 0 issues nothing; rank 1's validator cannot wait forever for a
  // record that will never be published.
  Options o = validate_only();
  o.watchdog_sec = 0.3;
  ScopedOptions opts(o);
  const std::string msg = run_expect_error(2, [](comm::Comm& c) {
    if (c.rank() == 1) {
      SiteGuard sg("test.orphan_reduce");
      Tensor x = Tensor::full(Shape{{4}}, 1.0f);
      c.all_reduce(x);
    }
  });
  EXPECT_NE(msg.find("collective mismatch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("missing"), std::string::npos) << msg;
  EXPECT_NE(msg.find("test.orphan_reduce"), std::string::npos) << msg;
}

// ------------------------------------------------------------ watchdog

TEST(Watchdog, StuckCollectiveDumpsFlightRecorderAndPoisons) {
  // Rank 1 never shows up for the all-reduce. Without the watchdog this
  // would sit in the rendezvous until the substrate's 120 s timeout;
  // with it, rank 0 unwinds within the deadline carrying the dump.
  Options o;
  o.validate = false;
  o.watchdog = true;
  o.watchdog_sec = 0.3;
  ScopedOptions opts(o);
  const std::string msg = run_expect_error(2, [](comm::Comm& c) {
    if (c.rank() == 0) {
      SiteGuard sg("test.stuck_reduce");
      Tensor x = Tensor::full(Shape{{4}}, 1.0f);
      c.all_reduce(x);
    }
  });
  EXPECT_NE(msg.find("comm watchdog"), std::string::npos) << msg;
  EXPECT_NE(msg.find("stuck in"), std::string::npos) << msg;
  EXPECT_NE(msg.find("flight recorder"), std::string::npos) << msg;
  EXPECT_NE(msg.find("test.stuck_reduce"), std::string::npos) << msg;
}

TEST(Watchdog, StuckRecvIsAttributedToItsCallSite) {
  Options o;
  o.validate = false;
  o.watchdog = true;
  o.watchdog_sec = 0.3;
  ScopedOptions opts(o);
  const std::string msg = run_expect_error(2, [](comm::Comm& c) {
    if (c.rank() == 0) {
      SiteGuard sg("test.recv_from_nobody");
      c.recv(1, /*tag=*/7);
    }
  });
  EXPECT_NE(msg.find("comm watchdog"), std::string::npos) << msg;
  EXPECT_NE(msg.find("recv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("test.recv_from_nobody"), std::string::npos) << msg;
}

// --------------------------------------------------- handle leak audit

TEST(HandleLeaks, UnwaitedIsendAtDrainIsCaught) {
  // The pipeline-drain bug class: a boundary isend whose handle is
  // dropped without wait() — nobody can ever observe its failure. The
  // registry audit runs when the communicator's last handle copy dies
  // (inside spmd::run) and counts the orphan.
  analysis::reset_handle_leaks();
  {
    Options o = validate_only();
    ScopedOptions opts(o);
    spmd::run(2, [](comm::Comm& c) {
      if (c.rank() == 0) {
        SiteGuard sg("test.leaky_isend");
        Tensor x = Tensor::full(Shape{{4}}, 1.0f);
        comm::CommHandle h = c.isend(1, /*tag=*/3, x);  // lint:allow(unwaited-handle)
        // h deliberately dropped un-waited.
      } else {
        c.recv(0, /*tag=*/3);
      }
    });
  }
  EXPECT_EQ(analysis::handle_leaks(), 1);
  analysis::reset_handle_leaks();
}

TEST(HandleLeaks, WaitedAndAbandonedHandlesDoNotCount) {
  analysis::reset_handle_leaks();
  {
    ScopedOptions opts(validate_only());
    spmd::run(2, [](comm::Comm& c) {
      Tensor x = Tensor::full(Shape{{4}}, 1.0f);
      comm::CommHandle waited = c.iall_reduce(x);
      waited.wait();
      if (c.rank() == 0) {
        // An explicitly-abandoned best-effort send is not a leak.
        comm::CommHandle fire_and_forget = c.isend(1, /*tag=*/9, x);
        fire_and_forget.abandon();
      } else {
        c.recv(0, /*tag=*/9);
      }
    });
  }
  EXPECT_EQ(analysis::handle_leaks(), 0);
}

// ---------------------------------- analyzer transparency (acceptance)

struct RankTraffic {
  comm::TrafficStats tp, pp, dp;
};

void expect_stats_eq(const comm::TrafficStats& a, const comm::TrafficStats& b,
                     const char* which, int rank) {
  EXPECT_EQ(a.bytes_received, b.bytes_received) << which << " rank " << rank;
  EXPECT_EQ(a.all_reduce_count, b.all_reduce_count) << which << " rank " << rank;
  EXPECT_EQ(a.all_gather_count, b.all_gather_count) << which << " rank " << rank;
  EXPECT_EQ(a.reduce_scatter_count, b.reduce_scatter_count)
      << which << " rank " << rank;
  EXPECT_EQ(a.broadcast_count, b.broadcast_count) << which << " rank " << rank;
  EXPECT_EQ(a.p2p_send_count, b.p2p_send_count) << which << " rank " << rank;
  EXPECT_EQ(a.p2p_bytes_sent, b.p2p_bytes_sent) << which << " rank " << rank;
  EXPECT_EQ(a.p2p_recv_count, b.p2p_recv_count) << which << " rank " << rank;
  EXPECT_EQ(a.p2p_bytes_received, b.p2p_bytes_received)
      << which << " rank " << rank;
}

// One t=2, p=2 (SP + selective recompute) training run; returns every
// step's loss and every rank's per-communicator traffic.
std::pair<std::vector<float>, std::vector<RankTraffic>> train_t2p2(int steps) {
  model::ModelConfig cfg = model::ModelConfig::tiny(2, 4);
  cfg.p = 2;
  cfg.sequence_parallel = true;
  cfg.recompute = core::Recompute::kSelective;
  cfg.global_batch = 4 * cfg.b;
  cfg.validate();

  // Deterministic batch (same construction for both runs).
  Rng rng(2026);
  std::vector<std::vector<int64_t>> tokens, targets;
  for (int64_t mb = 0; mb < cfg.total_microbatches(); ++mb) {
    std::vector<int64_t> tok(static_cast<size_t>(cfg.s * cfg.b));
    std::vector<int64_t> tgt(tok.size());
    for (auto& x : tok)
      x = static_cast<int64_t>(rng.next_below(static_cast<uint64_t>(cfg.v)));
    for (auto& x : tgt)
      x = static_cast<int64_t>(rng.next_below(static_cast<uint64_t>(cfg.v)));
    tokens.push_back(std::move(tok));
    targets.push_back(std::move(tgt));
  }

  const int world = cfg.t * cfg.p * cfg.d;
  std::vector<float> losses;
  std::vector<RankTraffic> traffic(static_cast<size_t>(world));
  spmd::run(world, [&](comm::Comm& c) {
    MemoryTracker::instance().reset();
    pipeline::PipelineEngine engine(cfg, c);
    optim::Sgd opt(engine.params(), 0.05f);
    std::vector<float> local;
    for (int step = 0; step < steps; ++step) {
      opt.zero_grad();
      auto stats = engine.run_iteration(tokens, targets, step);
      opt.step();
      local.push_back(stats.loss);
    }
    auto& slot = traffic[static_cast<size_t>(c.rank())];
    slot.tp = engine.tp_comm().stats();
    slot.pp = engine.pp_comm().stats();
    slot.dp = engine.dp_comm().stats();
    if (c.rank() == 0) losses = local;
  });
  return {losses, traffic};
}

TEST(AnalyzerTransparency, TrainingStepBitIdenticalWithAnalyzerOn) {
  // Acceptance criterion: full t=2/p=2 step with validation + watchdog
  // enabled produces bit-identical losses and identical TrafficStats to
  // the analyzer-off run — the ledger observes, it never participates.
  const int steps = 2;
  std::vector<float> ref_losses;
  std::vector<RankTraffic> ref_traffic;
  {
    Options off;  // enabled() == false: no ledger is even created
    ScopedOptions opts(off);
    std::tie(ref_losses, ref_traffic) = train_t2p2(steps);
  }

  std::vector<float> got_losses;
  std::vector<RankTraffic> got_traffic;
  {
    Options on;
    on.validate = true;
    on.watchdog = true;
    on.watchdog_sec = 30.0;
    ScopedOptions opts(on);
    std::tie(got_losses, got_traffic) = train_t2p2(steps);
  }

  ASSERT_EQ(ref_losses.size(), got_losses.size());
  for (size_t i = 0; i < ref_losses.size(); ++i) {
    EXPECT_EQ(ref_losses[i], got_losses[i]) << "step " << i;  // bitwise
  }
  ASSERT_EQ(ref_traffic.size(), got_traffic.size());
  for (size_t r = 0; r < ref_traffic.size(); ++r) {
    expect_stats_eq(ref_traffic[r].tp, got_traffic[r].tp, "tp",
                    static_cast<int>(r));
    expect_stats_eq(ref_traffic[r].pp, got_traffic[r].pp, "pp",
                    static_cast<int>(r));
    expect_stats_eq(ref_traffic[r].dp, got_traffic[r].dp, "dp",
                    static_cast<int>(r));
  }
  EXPECT_EQ(analysis::handle_leaks(), 0);
}

// A well-formed multi-collective program under full validation: every
// op matches, nothing throws, nothing leaks, the watchdog stays quiet.
TEST(AnalyzerTransparency, CleanProgramPassesValidation) {
  Options on;
  on.validate = true;
  on.watchdog = true;
  on.watchdog_sec = 30.0;
  ScopedOptions opts(on);
  spmd::run(4, [](comm::Comm& c) {
    SiteGuard sg("test.clean_program");
    Tensor x = Tensor::full(Shape{{8}}, static_cast<float>(c.rank() + 1));
    c.all_reduce(x);
    Tensor g = c.all_gather(x, 0);
    Tensor s = c.reduce_scatter(g, 0);
    c.broadcast(s, /*root=*/1);
    comm::Comm sub = c.split(c.rank() % 2);
    Tensor y = Tensor::full(Shape{{4}}, 2.0f);
    sub.all_reduce(y, comm::ReduceOp::Max);
    comm::CommHandle h = sub.iall_gather(y, 0);
    h.wait();
    c.barrier();
  });
}

}  // namespace
}  // namespace mls
