// Tests for the runtime subsystem: streams/events, the overlap
// scheduler, nonblocking collectives (bit-identical results and traffic
// vs their blocking twins), and end-to-end numeric equivalence of
// overlap_recompute — including nested checkpoints with dropout, whose
// RNG replay must be bit-exact when prefetched into a comm window.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "autograd/checkpoint.h"
#include "autograd/engine.h"
#include "autograd/functions.h"
#include "comm/spmd.h"
#include "common/rng.h"
#include "core/collectives.h"
#include "model/transformer.h"
#include "runtime/overlap.h"
#include "runtime/stream.h"

namespace mls {
namespace {

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

// ------------------------------------------------------------- stream

TEST(Stream, RunsTasksInFifoOrder) {
  runtime::Stream s("test");
  std::vector<int> order;  // only the worker thread writes
  for (int i = 0; i < 16; ++i) s.enqueue([&order, i] { order.push_back(i); });
  s.synchronize();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  EXPECT_EQ(s.tasks_executed(), 16);
}

TEST(Stream, EventReadyAfterPrecedingWork) {
  runtime::Stream s;
  std::atomic<bool> before{false};
  s.enqueue([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    before = true;
  });
  runtime::Event e = s.record_event();
  ASSERT_TRUE(e.valid());
  e.wait();
  EXPECT_TRUE(before.load());
  EXPECT_TRUE(e.ready());
  // An event recorded on an idle stream is ready (almost) immediately.
  s.synchronize();
  runtime::Event e2 = s.record_event();
  e2.wait();
  EXPECT_TRUE(e2.ready());
}

TEST(Stream, SynchronizeRethrowsTaskError) {
  runtime::Stream s;
  s.enqueue([] { throw Error("task boom"); });
  std::atomic<bool> later_ran{false};
  s.enqueue([&] { later_ran = true; });  // queue keeps draining
  EXPECT_THROW(s.synchronize(), Error);
  EXPECT_TRUE(later_ran.load());
}

TEST(Stream, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    runtime::Stream s;
    for (int i = 0; i < 8; ++i) s.enqueue([&] { ++ran; });
  }
  EXPECT_EQ(ran.load(), 8);
}

// -------------------------------------------------------- scheduler

TEST(OverlapScheduler, PrefetchesOnePerWindowInOrder) {
  runtime::OverlapScheduler sched;
  std::vector<int> ran;
  int key0 = 0, key1 = 0;
  sched.begin_scope();
  sched.add_prefetch(&key0, [&] { ran.push_back(0); });
  sched.add_prefetch(&key1, [&] { ran.push_back(1); });

  sched.on_comm_launch();  // runs replay 0
  ASSERT_EQ(ran, (std::vector<int>{0}));
  // Lookahead is capped: the front replay is done but unretired, so a
  // second window must not start replay 1.
  sched.on_comm_launch();
  ASSERT_EQ(ran, (std::vector<int>{0}));

  EXPECT_TRUE(sched.node_reached(&key0));  // 0 was prefetched
  sched.on_comm_launch();                  // now 1 runs
  ASSERT_EQ(ran, (std::vector<int>{0, 1}));
  EXPECT_TRUE(sched.node_reached(&key1));
  sched.end_scope();

  EXPECT_EQ(sched.stats().comm_windows, 3);
  EXPECT_EQ(sched.stats().prefetches, 2);
  EXPECT_EQ(sched.stats().inline_replays, 0);
  EXPECT_EQ(sched.window_work().size(), 3u);
}

TEST(OverlapScheduler, UnprefetchedNodeCountsAsInlineReplay) {
  runtime::OverlapScheduler sched;
  sched.begin_scope();
  int key = 0;
  sched.add_prefetch(&key, [] {});
  // No comm window opened before the engine reaches the node.
  EXPECT_FALSE(sched.node_reached(&key));
  EXPECT_EQ(sched.stats().inline_replays, 1);
  sched.end_scope();
}

TEST(OverlapScheduler, ScopesNestForReentrantBackward) {
  runtime::OverlapScheduler sched;
  std::vector<int> ran;
  int outer = 0, inner = 0;
  sched.begin_scope();
  sched.add_prefetch(&outer, [&] { ran.push_back(0); });
  sched.begin_scope();  // replay backward enters a nested scope
  sched.add_prefetch(&inner, [&] { ran.push_back(1); });
  sched.on_comm_launch();  // must run the *inner* scope's replay
  ASSERT_EQ(ran, (std::vector<int>{1}));
  EXPECT_TRUE(sched.node_reached(&inner));
  sched.end_scope();
  sched.on_comm_launch();  // back in the outer scope
  ASSERT_EQ(ran, (std::vector<int>{1, 0}));
  EXPECT_TRUE(sched.node_reached(&outer));
  sched.end_scope();
}

TEST(OverlapGuard, InactiveGuardInstallsNothing) {
  runtime::OverlapGuard g(/*active=*/false);
  EXPECT_EQ(g.scheduler(), nullptr);
  EXPECT_EQ(runtime::OverlapScheduler::current(), nullptr);
}

// ------------------------------------------- nonblocking collectives

struct StatsSnapshot {
  comm::TrafficStats s;
  explicit StatsSnapshot(const comm::TrafficStats& in) : s(in) {}
};

void expect_stats_equal(const comm::TrafficStats& a,
                        const comm::TrafficStats& b) {
  EXPECT_EQ(a.bytes_received, b.bytes_received);
  EXPECT_EQ(a.all_reduce_count, b.all_reduce_count);
  EXPECT_EQ(a.all_gather_count, b.all_gather_count);
  EXPECT_EQ(a.reduce_scatter_count, b.reduce_scatter_count);
  EXPECT_EQ(a.broadcast_count, b.broadcast_count);
  EXPECT_EQ(a.p2p_send_count, b.p2p_send_count);
  EXPECT_EQ(a.p2p_bytes_sent, b.p2p_bytes_sent);
  EXPECT_EQ(a.p2p_recv_count, b.p2p_recv_count);
  EXPECT_EQ(a.p2p_bytes_received, b.p2p_bytes_received);
}

class NonblockingTest : public ::testing::TestWithParam<int> {};

TEST_P(NonblockingTest, MatchBlockingBitwiseWithIdenticalTraffic) {
  const int t = GetParam();
  spmd::run(t, [&](comm::Comm& c) {
    Rng rng(40 + static_cast<uint64_t>(c.rank()));
    const Tensor input = Tensor::randn(Shape{{2 * t, 5}}, rng);

    // all-reduce
    Tensor ar_b = input.clone();
    c.stats().reset();
    c.all_reduce(ar_b);
    const StatsSnapshot ar_stats(c.stats());
    Tensor ar_nb = input.clone();
    c.stats().reset();
    comm::CommHandle h = c.iall_reduce(ar_nb);
    h.wait();
    ASSERT_TRUE(bitwise_equal(ar_b, ar_nb));
    expect_stats_equal(ar_stats.s, c.stats());

    // reduce-scatter
    c.stats().reset();
    Tensor rs_b = c.reduce_scatter(input, 0);
    const StatsSnapshot rs_stats(c.stats());
    c.stats().reset();
    Tensor rs_nb = c.ireduce_scatter(input, 0).result();
    ASSERT_TRUE(bitwise_equal(rs_b, rs_nb));
    expect_stats_equal(rs_stats.s, c.stats());

    // all-gather
    c.stats().reset();
    Tensor ag_b = c.all_gather(rs_b, 0);
    const StatsSnapshot ag_stats(c.stats());
    c.stats().reset();
    Tensor ag_nb = c.iall_gather(rs_nb, 0).result();
    ASSERT_TRUE(bitwise_equal(ag_b, ag_nb));
    expect_stats_equal(ag_stats.s, c.stats());
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, NonblockingTest,
                         ::testing::Values(2, 3, 4));

TEST(Nonblocking, IAllReduceLandsInPlace) {
  spmd::run(2, [](comm::Comm& c) {
    Tensor x = Tensor::full(Shape{{4}}, static_cast<float>(c.rank() + 1));
    comm::CommHandle h = c.iall_reduce(x);
    ASSERT_TRUE(h.valid());
    h.wait();
    EXPECT_TRUE(h.done());
    for (int64_t i = 0; i < 4; ++i) ASSERT_FLOAT_EQ(x.data()[i], 3.f);
  });
}

TEST(Nonblocking, ISendClonesEagerlyAndIRecvDelivers) {
  spmd::run(2, [](comm::Comm& c) {
    if (c.rank() == 0) {
      Tensor t = Tensor::full(Shape{{6}}, 9.f, Dtype::F16);
      comm::CommHandle h = c.isend(1, 3, t);
      t.fill_(-1.f);  // must not reach the receiver: isend cloned
      h.wait();
      EXPECT_EQ(c.stats().p2p_send_count, 1);
      EXPECT_EQ(c.stats().p2p_bytes_sent, 12);
    } else {
      Tensor r = c.irecv(0, 3).result();
      for (int64_t i = 0; i < 6; ++i) ASSERT_FLOAT_EQ(r.data()[i], 9.f);
      EXPECT_EQ(c.stats().p2p_recv_count, 1);
      EXPECT_EQ(c.stats().p2p_bytes_received, 12);
    }
  });
}

// --------------------------------------- overlap_recompute numerics

// Backward gradients of a 2-layer tensor+sequence-parallel stack with
// selective recomputation must be bit-identical with and without
// overlap_recompute: the prefetched replays run on the same thread with
// the same RNG sites, just earlier.
TEST(OverlapRecompute, LayerGradsBitIdenticalToSerial) {
  const int t = 2;
  model::ModelConfig cfg = model::ModelConfig::tiny(t, 2);
  cfg.sequence_parallel = true;
  cfg.recompute = core::Recompute::kSelective;
  spmd::run(t, [&](comm::Comm& c) {
    auto run_mode = [&](bool overlap, std::vector<Tensor>& grads) {
      core::ParallelEnv env;
      env.tp = c;
      env.sequence_parallel = true;
      env.recompute = core::Recompute::kSelective;
      env.overlap_recompute = overlap;
      env.seed = cfg.seed;
      Rng master(cfg.seed);
      std::vector<std::unique_ptr<model::TransformerLayer>> layers;
      for (int l = 0; l < 2; ++l) {
        layers.push_back(
            std::make_unique<model::TransformerLayer>(env, cfg, l, master));
      }
      Rng drng(11);
      Tensor x0 = Tensor::randn(Shape{{cfg.s / t, cfg.b, cfg.h}}, drng);
      ag::Var x(x0, true);
      ag::Var y = x;
      for (auto& l : layers) y = l->forward(y, env);
      {
        runtime::OverlapGuard guard(overlap);
        ag::backward(y, Tensor::full(y.value().shape(), 1.f));
        if (overlap) {
          auto* s = guard.scheduler();
          ASSERT_NE(s, nullptr);
          // The mode must actually engage: windows opened, replays hidden.
          EXPECT_GT(s->stats().comm_windows, 0);
          EXPECT_GT(s->stats().prefetches, 0);
        }
      }
      grads.push_back(x.grad().clone());
      for (auto& l : layers)
        for (const auto& p : l->params()) grads.push_back(p.grad().clone());
    };
    std::vector<Tensor> serial, overlapped;
    run_mode(false, serial);
    run_mode(true, overlapped);
    ASSERT_EQ(serial.size(), overlapped.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_TRUE(bitwise_equal(serial[i], overlapped[i])) << "grad " << i;
    }
  });
}

// Nested checkpoints with dropout at both levels: the outer (full-layer
// style, collective-bearing) checkpoint replays inline, the inner
// pure-compute one is prefetched into the ḡ backward's all-gather
// window — and both dropout masks must replay bit-exactly.
TEST(OverlapRecompute, NestedCheckpointDropoutReplayBitExact) {
  const int t = 2;
  const int64_t s = 8, h = 16;
  spmd::run(t, [&](comm::Comm& c) {
    Rng rng(21 + static_cast<uint64_t>(c.rank()));
    const Tensor x0 = Tensor::randn(Shape{{s / t, h}}, rng);
    Rng wrng(33);  // same weights on every rank
    const Tensor w0 = Tensor::randn(Shape{{h, h}}, wrng, 0.3f);

    auto run_mode = [&](bool overlap, Tensor& dx, Tensor& dw, Tensor& out) {
      ag::Var x(x0.clone(), true);
      ag::Var w = ag::Var::param(w0.clone());
      auto inner = [&](const std::vector<ag::Var>& ins) {
        ag::Var a = ag::gelu(ag::matmul(ins[0], ins[1]));
        return ag::dropout(a, 0.25f, /*seed=*/123,
                           ops::IndexMap::identity(a.value().shape()));
      };
      auto outer = [&](const std::vector<ag::Var>& ins) {
        ag::Var g = core::gather_from_sequence_parallel(ins[0], c);
        ag::Var a =
            ag::checkpoint(inner, {g, ins[1]}, "inner", /*pure_compute=*/true);
        ag::Var d = ag::dropout(a, 0.1f, /*seed=*/321,
                                ops::IndexMap::identity(a.value().shape()));
        return core::scatter_to_sequence_parallel(d, c);
      };
      ag::Var y = ag::checkpoint(outer, {x, w}, "outer", /*pure_compute=*/false);
      {
        runtime::OverlapGuard guard(overlap);
        ag::backward(y, Tensor::full(y.value().shape(), 1.f));
        if (overlap) {
          auto* sc = guard.scheduler();
          ASSERT_NE(sc, nullptr);
          // The inner replay really ran inside a window of the nested
          // (re-entrant) backward, not at its own node.
          EXPECT_GT(sc->stats().prefetches, 0);
        }
      }
      dx = x.grad().clone();
      dw = w.grad().clone();
      out = y.value().clone();
    };

    Tensor dx_s, dw_s, out_s, dx_o, dw_o, out_o;
    run_mode(false, dx_s, dw_s, out_s);
    run_mode(true, dx_o, dw_o, out_o);
    ASSERT_TRUE(bitwise_equal(out_s, out_o));
    ASSERT_TRUE(bitwise_equal(dx_s, dx_o));
    ASSERT_TRUE(bitwise_equal(dw_s, dw_o));
  });
}

}  // namespace
}  // namespace mls
