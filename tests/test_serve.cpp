// Serving-plane tests: the paged continuous-batching decode path must
// emit bit-identical tokens to model::generate() for every sequence in
// a mixed batch (serial and on a t=2 TP grid, paged and naive, overlap
// on and off), plus block-table stress (admit/evict/reuse under
// preemption, fragmentation bounds, poisoned teardown) and the
// KV-bytes MemoryTracker axis.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "comm/spmd.h"
#include "common/memtracker.h"
#include "model/generate.h"
#include "serve/report.h"
#include "serve/traffic.h"

namespace mls {
namespace {

using model::ModelConfig;
using serve::ContinuousBatchScheduler;
using serve::FinishReason;
using serve::Request;
using serve::ServeConfig;

// A batch mixing prompt lengths, output budgets and temperatures, all
// fitting the trained window (no overflow — that case has its own
// test). Content is an arbitrary deterministic pattern.
std::vector<Request> mixed_requests(const ModelConfig& cfg) {
  const int64_t plens[] = {1, 3, 5, 2, 4, 1};
  const int64_t news[] = {6, 4, 8, 5, 3, 7};
  const float temps[] = {0.0f, 0.7f, 0.0f, 1.3f, 0.9f, 0.0f};
  std::vector<Request> reqs;
  for (int64_t i = 0; i < 6; ++i) {
    Request r;
    r.id = i;
    for (int64_t j = 0; j < plens[i]; ++j) {
      r.prompt.push_back((3 + 7 * j + 11 * i) % cfg.v);
    }
    r.max_new_tokens = news[i];
    r.temperature = temps[i];
    r.seed = 100 + static_cast<uint64_t>(i);
    reqs.push_back(std::move(r));
  }
  return reqs;
}

std::vector<int64_t> generate_reference(model::GPTModel& m, const Request& r) {
  model::GenerateOptions o;
  o.max_new_tokens = r.max_new_tokens;
  o.temperature = r.temperature;
  o.seed = r.seed;
  return model::generate(m, r.prompt, o);
}

// Runs every request through the scheduler until drained. Stats are
// snapshotted by value: `kv` right before teardown (live pool state),
// then blocks/bytes re-checked empty via `kv_after_drain`.
struct ServeResult {
  std::map<int64_t, std::vector<int64_t>> tokens;
  std::map<int64_t, FinishReason> reasons;
  serve::SchedStats stats;
  serve::KVStats kv;
};

ServeResult serve_all(model::GPTModel& m, const ServeConfig& scfg,
                      const std::vector<Request>& reqs) {
  ContinuousBatchScheduler sched(m, scfg);
  for (const Request& r : reqs) sched.submit(r);
  ServeResult res;
  int64_t guard = 0;
  while (!sched.idle()) {
    MLS_CHECK_LT(guard++, 100000) << "scheduler did not drain";
    for (auto& c : sched.step()) {
      res.reasons[c.request.id] = c.reason;
      res.tokens[c.request.id] = std::move(c.tokens);
    }
  }
  res.stats = sched.stats();
  res.kv = sched.kv_stats();
  return res;
}

TEST(Serve, PagedDecodeMatchesGenerateSerial) {
  ModelConfig cfg = ModelConfig::tiny(1, 2);
  cfg.b = 1;
  spmd::run(1, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    const auto reqs = mixed_requests(cfg);
    std::map<int64_t, std::vector<int64_t>> ref;
    for (const auto& r : reqs) ref[r.id] = generate_reference(m, r);

    ServeConfig scfg;
    scfg.block_tokens = 4;
    scfg.kv_budget_tokens = 256;
    scfg.max_batch = 4;  // forces queueing; admissions mid-flight
    const auto got = serve_all(m, scfg, reqs);
    ASSERT_EQ(got.tokens.size(), reqs.size());
    for (const auto& r : reqs) {
      EXPECT_EQ(got.tokens.at(r.id), ref.at(r.id)) << "request " << r.id;
    }
  });
}

TEST(Serve, PagedDecodeMatchesGenerateTP2) {
  ModelConfig cfg = ModelConfig::tiny(2, 2);
  cfg.b = 1;
  spmd::run(2, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    const auto reqs = mixed_requests(cfg);
    std::map<int64_t, std::vector<int64_t>> ref;
    for (const auto& r : reqs) ref[r.id] = generate_reference(m, r);

    ServeConfig scfg;
    scfg.block_tokens = 4;
    scfg.kv_budget_tokens = 256;
    scfg.max_batch = 4;
    scfg.overlap = true;  // exercises the pipelined decode collectives
    const auto got = serve_all(m, scfg, reqs);
    ASSERT_EQ(got.tokens.size(), reqs.size());
    for (const auto& r : reqs) {
      EXPECT_EQ(got.tokens.at(r.id), ref.at(r.id)) << "request " << r.id;
    }
  });
}

TEST(Serve, SequenceParallelModelDecodesIdentically) {
  // An SP-trained model serves through TP-style decode collectives
  // (DESIGN.md §11): same weight shards, and at t=2 the different
  // collective decompositions sum in an order-free two-operand way, so
  // tokens still match the SP full-window generate() bit for bit.
  ModelConfig cfg = ModelConfig::tiny(2, 2);
  cfg.b = 1;
  cfg.sequence_parallel = true;
  spmd::run(2, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    const auto reqs = mixed_requests(cfg);
    std::map<int64_t, std::vector<int64_t>> ref;
    for (const auto& r : reqs) ref[r.id] = generate_reference(m, r);
    ServeConfig scfg;
    scfg.block_tokens = 4;
    scfg.kv_budget_tokens = 256;
    scfg.max_batch = 6;
    const auto got = serve_all(m, scfg, reqs);
    for (const auto& r : reqs) {
      EXPECT_EQ(got.tokens.at(r.id), ref.at(r.id)) << "request " << r.id;
    }
  });
}

TEST(Serve, NaiveAndPagedAgreeAndPagedReservesLess) {
  ModelConfig cfg = ModelConfig::tiny(1, 2);
  cfg.b = 1;
  spmd::run(1, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    const auto reqs = mixed_requests(cfg);

    ServeConfig paged;
    paged.block_tokens = 2;
    paged.kv_budget_tokens = 256;
    paged.max_batch = 6;
    const auto got_paged = serve_all(m, paged, reqs);

    ServeConfig naive = paged;
    naive.paged = false;
    const auto got_naive = serve_all(m, naive, reqs);

    EXPECT_EQ(got_paged.tokens, got_naive.tokens);
    // Both caches cached the same tokens, but the block table grows a
    // sequence page by page while the naive cache holds each request's
    // worst case from admission to retirement — so its reserved peak
    // and its reserved-but-unwritten waste are both higher.
    EXPECT_LT(got_paged.kv.reserved_peak, got_naive.kv.reserved_peak);
    EXPECT_GE(got_paged.kv.reserved_peak, got_paged.kv.used_peak);
    EXPECT_EQ(got_paged.kv.used_peak, got_naive.kv.used_peak);
    ASSERT_GT(got_paged.stats.steps, 0);
    const double paged_waste =
        got_paged.stats.kv_waste_sum / static_cast<double>(got_paged.stats.steps);
    const double naive_waste =
        got_naive.stats.kv_waste_sum / static_cast<double>(got_naive.stats.steps);
    EXPECT_LT(paged_waste, naive_waste);
  });
}

TEST(Serve, OverlapOnOffSameTokens) {
  ModelConfig cfg = ModelConfig::tiny(2, 2);
  cfg.b = 1;
  spmd::run(2, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    const auto reqs = mixed_requests(cfg);
    ServeConfig on;
    on.block_tokens = 4;
    on.kv_budget_tokens = 256;
    on.max_batch = 6;
    on.overlap = true;
    ServeConfig off = on;
    off.overlap = false;
    const auto got_on = serve_all(m, on, reqs);
    const auto got_off = serve_all(m, off, reqs);
    EXPECT_EQ(got_on.tokens, got_off.tokens);
  });
}

TEST(Serve, PreemptionRecomputesAndReusesBlocks) {
  // A pool far smaller than the working set: sequences are evicted and
  // re-prefilled, yet every output still matches generate(), and all
  // blocks return to the free list when the cache drains.
  ModelConfig cfg = ModelConfig::tiny(1, 2);
  cfg.b = 1;
  spmd::run(1, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    const auto reqs = mixed_requests(cfg);
    std::map<int64_t, std::vector<int64_t>> ref;
    for (const auto& r : reqs) ref[r.id] = generate_reference(m, r);

    ServeConfig scfg;
    scfg.block_tokens = 4;
    scfg.kv_budget_tokens = 24;  // 6 blocks for 6 requests
    scfg.max_batch = 6;
    const auto got = serve_all(m, scfg, reqs);
    for (const auto& r : reqs) {
      EXPECT_EQ(got.tokens.at(r.id), ref.at(r.id)) << "request " << r.id;
    }
    EXPECT_GT(got.stats.preemptions, 0) << "pool was sized to force eviction";
    EXPECT_EQ(got.kv.blocks_free, got.kv.blocks_total);
    EXPECT_EQ(got.kv.reserved_bytes, 0);
    EXPECT_EQ(got.kv.used_bytes, 0);
    EXPECT_GT(got.kv.reserve_failures, 0);
    EXPECT_GT(got.kv.used_peak, 0);
  });
}

TEST(Serve, ContextOverflowRetiresCleanly) {
  // Where the batch-of-one path throws ContextOverflowError, the
  // scheduler retires the sequence with kContextOverflow after
  // generating exactly the tokens generate() produces before throwing —
  // and keeps serving its batchmates.
  ModelConfig cfg = ModelConfig::tiny(1, 2);
  cfg.b = 1;
  spmd::run(1, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    Request over;
    over.id = 0;
    over.prompt = {4, 9, 2};
    over.max_new_tokens = cfg.s * 3;  // cannot fit the window
    Request ok;
    ok.id = 1;
    ok.prompt = {7};
    ok.max_new_tokens = 5;

    EXPECT_THROW(generate_reference(m, over), model::ContextOverflowError);
    // The overflow point: generate() samples s - prompt + 1 tokens
    // before needing position s.
    Request capped = over;
    capped.max_new_tokens =
        cfg.s - static_cast<int64_t>(over.prompt.size()) + 1;
    const auto ref_over = generate_reference(m, capped);
    const auto ref_ok = generate_reference(m, ok);

    ServeConfig scfg;
    scfg.block_tokens = 4;
    scfg.kv_budget_tokens = 256;
    scfg.max_batch = 4;
    const auto got = serve_all(m, scfg, {over, ok});
    EXPECT_EQ(got.reasons.at(0), FinishReason::kContextOverflow);
    EXPECT_EQ(got.reasons.at(1), FinishReason::kCompleted);
    EXPECT_EQ(got.tokens.at(0), ref_over);
    EXPECT_EQ(got.tokens.at(1), ref_ok);
  });
}

TEST(Serve, ImpossibleRequestsAreRejected) {
  ModelConfig cfg = ModelConfig::tiny(1, 1);
  cfg.b = 1;
  spmd::run(1, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    Request too_long;
    too_long.id = 0;
    too_long.prompt.assign(static_cast<size_t>(cfg.s + 1), 1);
    too_long.max_new_tokens = 1;
    Request too_big;  // worst case exceeds the whole KV budget
    too_big.id = 1;
    too_big.prompt = {1, 2, 3, 4, 5, 6, 7, 8};
    too_big.max_new_tokens = cfg.s;
    Request fine;
    fine.id = 2;
    fine.prompt = {5};
    fine.max_new_tokens = 3;

    ServeConfig scfg;
    scfg.block_tokens = 2;
    scfg.kv_budget_tokens = 8;  // 4 blocks; too_big needs 16 positions
    scfg.max_batch = 4;
    const auto got = serve_all(m, scfg, {too_long, too_big, fine});
    EXPECT_EQ(got.reasons.at(0), FinishReason::kRejected);
    EXPECT_EQ(got.reasons.at(1), FinishReason::kRejected);
    EXPECT_EQ(got.reasons.at(2), FinishReason::kCompleted);
    EXPECT_EQ(got.tokens.at(0).size(), too_long.prompt.size());  // untouched
    EXPECT_EQ(got.tokens.at(2).size(), 4u);
  });
}

TEST(Serve, PoisonedRankTearsDownCleanlyAndWorldRestarts) {
  // A rank failing mid-step must unblock its peer (poisoned
  // collectives), unwind with every sequence's blocks freed, and leave
  // the process healthy enough to serve a fresh world.
  ModelConfig cfg = ModelConfig::tiny(2, 2);
  cfg.b = 1;
  const auto serve_once = [&](bool fail) {
    spmd::run(2, [&](comm::Comm& c) {
      model::GPTModel m(cfg, c);
      ServeConfig scfg;
      scfg.block_tokens = 4;
      scfg.kv_budget_tokens = 256;
      scfg.max_batch = 6;
      ContinuousBatchScheduler sched(m, scfg);
      if (fail && c.rank() == 1) {
        sched.set_step_hook([](int64_t step) {
          if (step == 3) throw Error("injected serve fault");
        });
      }
      for (const Request& r : mixed_requests(cfg)) sched.submit(r);
      while (!sched.idle()) sched.step();
    });
  };
  EXPECT_THROW(serve_once(true), Error);
  serve_once(false);  // a fresh world serves normally afterwards
}

TEST(Serve, ClosedLoopTrafficDrainsDeterministically) {
  ModelConfig cfg = ModelConfig::tiny(1, 2);
  cfg.b = 1;
  spmd::run(1, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    serve::TrafficConfig tcfg;
    tcfg.clients = 8;
    tcfg.total_requests = 24;
    tcfg.temperature = 0.8f;
    const auto run_once = [&]() {
      ServeConfig scfg;
      scfg.block_tokens = 4;
      scfg.kv_budget_tokens = 128;
      scfg.max_batch = 8;
      ContinuousBatchScheduler sched(m, scfg);
      serve::ClosedLoopTraffic traffic(tcfg, cfg.v, cfg.s);
      auto completions = serve::run_closed_loop(sched, traffic);
      std::map<int64_t, std::vector<int64_t>> by_id;
      for (auto& comp : completions) by_id[comp.request.id] = comp.tokens;
      return by_id;
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.size(), 24u);
    EXPECT_EQ(a, b) << "same seed => same request stream => same tokens";
  });
}

TEST(Serve, KvAxisAndAllocatorStatsAreWired) {
  ModelConfig cfg = ModelConfig::tiny(1, 1);
  cfg.b = 1;
  spmd::run(1, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    MemoryTracker::instance().reset();
    Request r;
    r.id = 0;
    r.prompt = {1, 2};
    r.max_new_tokens = 6;

    ServeConfig scfg;
    scfg.block_tokens = 4;
    scfg.kv_budget_tokens = 64;
    int64_t kv_mid = -1;
    {
      ContinuousBatchScheduler sched(m, scfg);
      sched.set_step_hook([&](int64_t step) {
        if (step == 2) kv_mid = MemoryTracker::instance().kv_bytes();
      });
      sched.submit(r);
      while (!sched.idle()) sched.step();
    }
    EXPECT_GT(kv_mid, 0) << "KV axis should charge while decoding";
    EXPECT_EQ(MemoryTracker::instance().kv_bytes(), 0);
    EXPECT_GE(MemoryTracker::instance().kv_peak_bytes(), kv_mid);

    const memory::AllocStats st = MemoryTracker::instance().allocator_stats();
    EXPECT_GT(st.physical_bytes, 0);
    EXPECT_GE(st.physical_peak, st.physical_bytes);
    EXPECT_FALSE(st.json().empty());
  });
}

TEST(Serve, StopTokenRetiresEarlyAndReclaimsBlocks) {
  // A request with a stop token that fires mid-decode must retire as
  // kCompleted with the stop token included (matching generate()'s
  // early break), and its paged blocks — reserved for the full
  // max_new_tokens worst case — must return to the pool that same step.
  ModelConfig cfg = ModelConfig::tiny(1, 2);
  cfg.b = 1;
  spmd::run(1, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    const std::vector<int64_t> prompt = {3};
    const int64_t budget = 10;

    // Learn what greedy decode emits, then stop on its 3rd new token.
    model::GenerateOptions probe;
    probe.max_new_tokens = budget;
    const std::vector<int64_t> free_run = model::generate(m, prompt, probe);
    ASSERT_EQ(free_run.size(), prompt.size() + budget);
    const int64_t stop = free_run[prompt.size() + 2];

    model::GenerateOptions o = probe;
    o.stop_tokens = {stop};
    const std::vector<int64_t> ref = model::generate(m, prompt, o);
    ASSERT_LE(ref.size(), prompt.size() + 3);
    ASSERT_EQ(ref.back(), stop);

    Request r;
    r.id = 7;
    r.prompt = prompt;
    r.max_new_tokens = budget;
    r.stop_tokens = {stop};

    ServeConfig scfg;
    scfg.block_tokens = 2;
    scfg.kv_budget_tokens = 64;
    ContinuousBatchScheduler sched(m, scfg);
    const int64_t blocks_total = sched.kv_stats().blocks_total;
    // The hook runs after this step's KV reservations and before
    // retirement, so it observes the blocks the sequence is holding.
    int64_t min_free = blocks_total;
    sched.set_step_hook([&](int64_t) {
      min_free = std::min(min_free, sched.kv_stats().blocks_free);
    });
    sched.submit(r);
    std::vector<serve::Completion> done;
    while (!sched.idle()) {
      for (auto& comp : sched.step()) done.push_back(std::move(comp));
    }
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].reason, FinishReason::kCompleted);
    EXPECT_EQ(done[0].tokens, ref);
    EXPECT_LT(done[0].generated(), budget) << "must stop before the budget";
    // Blocks were in use mid-decode and all came back at retirement —
    // the early finisher's unused tail is available to the queue again.
    EXPECT_LT(min_free, blocks_total);
    EXPECT_EQ(sched.kv_stats().blocks_free, blocks_total);
    EXPECT_EQ(sched.kv_stats().sequences_freed, 1);
  });
}

TEST(Serve, StopTokenParityWithGenerateAcrossBatch) {
  // Every request carries a stop set; the batched continuous scheduler
  // must emit exactly the tokens model::generate() produces for the
  // same (prompt, options, stop set) — whether or not the stop fires.
  ModelConfig cfg = ModelConfig::tiny(1, 2);
  cfg.b = 1;
  spmd::run(1, [&](comm::Comm& c) {
    model::GPTModel m(cfg, c);
    auto reqs = mixed_requests(cfg);
    // Sampling is a pure function of (seed, step), so a probe run tells
    // us exactly what each request will emit. Even ids stop on their
    // 2nd generated token (guaranteed early); odd ids get a stop token
    // chosen off the probe's trajectory (guaranteed full budget).
    for (size_t i = 0; i < reqs.size(); ++i) {
      model::GenerateOptions probe;
      probe.max_new_tokens = reqs[i].max_new_tokens;
      probe.temperature = reqs[i].temperature;
      probe.seed = reqs[i].seed;
      const auto run = model::generate(m, reqs[i].prompt, probe);
      if (i % 2 == 0) {
        reqs[i].stop_tokens = {run[reqs[i].prompt.size() + 1]};
      } else {
        int64_t avoid = 0;
        while (std::find(run.begin() + static_cast<int64_t>(
                                           reqs[i].prompt.size()),
                         run.end(), avoid) != run.end()) {
          ++avoid;
        }
        reqs[i].stop_tokens = {avoid};
      }
    }
    std::map<int64_t, std::vector<int64_t>> ref;
    for (const auto& r : reqs) {
      model::GenerateOptions o;
      o.max_new_tokens = r.max_new_tokens;
      o.temperature = r.temperature;
      o.seed = r.seed;
      o.stop_tokens = r.stop_tokens;
      ref[r.id] = model::generate(m, r.prompt, o);
    }

    ServeConfig scfg;
    scfg.block_tokens = 4;
    scfg.kv_budget_tokens = 256;
    scfg.max_batch = 4;
    const auto got = serve_all(m, scfg, reqs);
    ASSERT_EQ(got.tokens.size(), reqs.size());
    bool any_early = false;
    for (const auto& r : reqs) {
      EXPECT_EQ(got.tokens.at(r.id), ref.at(r.id)) << "request " << r.id;
      EXPECT_EQ(got.reasons.at(r.id), FinishReason::kCompleted);
      any_early |= static_cast<int64_t>(got.tokens.at(r.id).size() -
                                        r.prompt.size()) < r.max_new_tokens;
    }
    EXPECT_TRUE(any_early) << "stop sets should fire for at least one request";
  });
}

}  // namespace
}  // namespace mls
