// Performance-model tests: the Appendix A FLOPs identities (exact) and
// the calibrated cost model's reproduction of Table 4, Figure 8 and
// Table 5 (shape + tolerance). The model is calibrated on a single
// number (Table 4 row 1); everything else asserted here is predicted.
#include <gtest/gtest.h>

#include "perf/flops.h"
#include "perf/pipeline_sim.h"

namespace mls {
namespace {

using core::Recompute;
using model::ModelConfig;
using perf::MachineModel;

// ------------------------------------------------------ Appendix A

TEST(FlopsModel, Eq7KnownValue) {
  // Hand-computed Eq 7 for the 22B config.
  ModelConfig cfg = ModelConfig::gpt_22b();
  const double expect = 72.0 * 4 * 48 * 2048 * 6144.0 * 6144.0 *
                        (1.0 + 2048.0 / (6 * 6144.0) +
                         51200.0 / (12.0 * 6144.0 * 48));
  EXPECT_DOUBLE_EQ(perf::model_flops_per_iteration(cfg), expect);
}

TEST(FlopsModel, HardwareToModelRatioApproxEq9) {
  // Eq 9: for selective recomputation, hardware/model ≈ 1 + s/6h.
  for (const auto& cfg : {ModelConfig::gpt_175b(), ModelConfig::gpt_530b()}) {
    const double exact =
        perf::hardware_flops_per_iteration(cfg, Recompute::kSelective) /
        perf::model_flops_per_iteration(cfg);
    EXPECT_NEAR(exact, perf::hw_to_model_flops_ratio_approx(cfg), 0.01);
  }
}

TEST(FlopsModel, SelectiveRecomputeFlopsOverheadMatchesPaper) {
  // §5: "only 2.7% and 1.6% FLOPs overhead" for GPT-3 and MT-NLG.
  auto overhead = [](const ModelConfig& cfg) {
    return perf::hardware_flops_per_iteration(cfg, Recompute::kSelective) /
               perf::model_flops_per_iteration(cfg) -
           1.0;
  };
  EXPECT_NEAR(overhead(ModelConfig::gpt_175b()), 0.027, 0.002);
  EXPECT_NEAR(overhead(ModelConfig::gpt_530b()), 0.016, 0.002);
}

TEST(FlopsModel, OrderingNoneSelectiveFull) {
  const ModelConfig cfg = ModelConfig::gpt_175b();
  const double none = perf::hardware_flops_per_iteration(cfg, Recompute::kNone);
  const double sel =
      perf::hardware_flops_per_iteration(cfg, Recompute::kSelective);
  const double full = perf::hardware_flops_per_iteration(cfg, Recompute::kFull);
  EXPECT_LT(none, sel);
  EXPECT_LT(sel, full);
  // Full recomputation costs roughly an extra forward pass (~1/3).
  EXPECT_NEAR(full / none, 4.0 / 3.0, 0.02);
}

TEST(FlopsModel, MfuFromPaperIterationTimesMatchesPaperMfu) {
  // §6.3 consistency: plugging the paper's own iteration times into the
  // MFU definition must reproduce the paper's MFU column.
  struct Row {
    ModelConfig cfg;
    double seconds, mfu, hfu;
  };
  const Row rows[] = {
      {ModelConfig::gpt_22b(), 1.10, 0.415, 0.437},
      {ModelConfig::gpt_175b(), 13.75, 0.514, 0.528},
      {ModelConfig::gpt_530b(), 37.83, 0.560, 0.570},
      {ModelConfig::gpt_1t(), 71.49, 0.563, 0.570},
  };
  for (const auto& r : rows) {
    EXPECT_NEAR(perf::mfu(r.cfg, r.seconds, 312e12), r.mfu, 0.01) << r.cfg.name;
    EXPECT_NEAR(perf::hfu(r.cfg, Recompute::kSelective, r.seconds, 312e12),
                r.hfu, 0.01)
        << r.cfg.name;
  }
}

// ------------------------------------------------------ Table 4

struct Table4Row {
  bool sp;
  Recompute rc;
  double fwd_ms, bwd_ms;  // paper values (backward incl. recompute)
};

class Table4 : public ::testing::TestWithParam<Table4Row> {};

TEST_P(Table4, LayerTimesWithinTolerance) {
  const auto row = GetParam();
  const ModelConfig cfg = ModelConfig::gpt_22b();
  const MachineModel mm = MachineModel::a100();
  const auto lt = perf::layer_time(cfg, mm, row.sp, row.rc);
  EXPECT_NEAR(lt.forward * 1e3, row.fwd_ms, 0.08 * row.fwd_ms);
  EXPECT_NEAR((lt.backward + lt.recompute) * 1e3, row.bwd_ms,
              0.08 * row.bwd_ms);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table4,
    ::testing::Values(Table4Row{false, Recompute::kNone, 7.7, 11.9},
                      Table4Row{true, Recompute::kNone, 7.2, 11.8},
                      Table4Row{false, Recompute::kFull, 7.7, 19.5},
                      Table4Row{false, Recompute::kSelective, 7.7, 13.2},
                      Table4Row{true, Recompute::kSelective, 7.2, 13.1}),
    [](const ::testing::TestParamInfo<Table4Row>& info) {
      return std::string(info.param.sp ? "sp" : "nosp") + "_" +
             core::recompute_name(info.param.rc);
    });

TEST(Table4Shape, OverheadsMatchPaperStory) {
  const ModelConfig cfg = ModelConfig::gpt_22b();
  const MachineModel mm = MachineModel::a100();
  const auto base = perf::layer_time(cfg, mm, false, Recompute::kNone);
  const auto sp = perf::layer_time(cfg, mm, true, Recompute::kNone);
  const auto full = perf::layer_time(cfg, mm, false, Recompute::kFull);
  const auto sel = perf::layer_time(cfg, mm, false, Recompute::kSelective);
  const auto both = perf::layer_time(cfg, mm, true, Recompute::kSelective);

  // "sequence parallelism provides a modest improvement" (−3%).
  EXPECT_LT(sp.combined(), base.combined());
  EXPECT_GT(sp.combined() / base.combined(), 0.93);
  // Full recompute ≈ 39% overhead (the optimized-backward footnote).
  const double full_ovh = full.combined() / base.combined() - 1.0;
  EXPECT_NEAR(full_ovh, 0.39, 0.05);
  // Selective ≈ 7%, selective+sequence ≈ 4%.
  EXPECT_NEAR(sel.combined() / base.combined() - 1.0, 0.07, 0.035);
  EXPECT_NEAR(both.combined() / base.combined() - 1.0, 0.04, 0.035);
  // Selective recompute itself ~1.3 ms (§6.2: "1.3ms, or 11% of the
  // 11.9ms baseline").
  EXPECT_NEAR(sel.recompute * 1e3, 1.3, 0.4);
}

// ------------------------------------------------------ Figure 8

TEST(Figure8, RecomputeOverheadShrinksWithModelSize) {
  const MachineModel mm = MachineModel::a100();
  double prev_present_ovh = 1.0;
  for (const auto& cfg : {ModelConfig::gpt_22b(), ModelConfig::gpt_175b(),
                          ModelConfig::gpt_530b(), ModelConfig::gpt_1t()}) {
    const auto base = perf::layer_time(cfg, mm, false, Recompute::kNone);
    const auto present = perf::layer_time(cfg, mm, true, Recompute::kSelective);
    const auto full = perf::layer_time(cfg, mm, false, Recompute::kFull);
    const double present_ovh = present.combined() / base.combined() - 1.0;
    const double full_ovh = full.combined() / base.combined() - 1.0;
    // Fig 8: full recompute stays ~36-39% while present work shrinks.
    EXPECT_NEAR(full_ovh, 0.37, 0.05) << cfg.name;
    EXPECT_LE(present_ovh, prev_present_ovh + 1e-9) << cfg.name;
    prev_present_ovh = present_ovh;
  }
  // "For the 530B and 1T cases, the overhead is just 2%".
  for (const auto& cfg : {ModelConfig::gpt_530b(), ModelConfig::gpt_1t()}) {
    const auto base = perf::layer_time(cfg, mm, false, Recompute::kNone);
    const auto present = perf::layer_time(cfg, mm, true, Recompute::kSelective);
    EXPECT_LT(present.combined() / base.combined() - 1.0, 0.05) << cfg.name;
  }
}

// ------------------------------------------------------ Table 5

struct Table5Row {
  ModelConfig cfg;
  double full_s, present_s, mfu, hfu;
};

TEST(Table5, EndToEndIterationTimes) {
  const MachineModel mm = MachineModel::a100();
  const Table5Row rows[] = {
      {ModelConfig::gpt_22b(), 1.42, 1.10, 0.415, 0.437},
      {ModelConfig::gpt_175b(), 18.13, 13.75, 0.514, 0.528},
      {ModelConfig::gpt_530b(), 49.05, 37.83, 0.560, 0.570},
      {ModelConfig::gpt_1t(), 94.42, 71.49, 0.563, 0.570},
  };
  for (const auto& r : rows) {
    const auto full = perf::end_to_end(r.cfg, mm, false, Recompute::kFull);
    const auto present = perf::end_to_end(r.cfg, mm, true, Recompute::kSelective);
    EXPECT_NEAR(full.iteration_seconds, r.full_s, 0.08 * r.full_s) << r.cfg.name;
    EXPECT_NEAR(present.iteration_seconds, r.present_s, 0.08 * r.present_s)
        << r.cfg.name;
    // "between 29.0% and 32.1% improvement in the throughput".
    const double incr = full.iteration_seconds / present.iteration_seconds - 1;
    EXPECT_GT(incr, 0.25) << r.cfg.name;
    EXPECT_LT(incr, 0.40) << r.cfg.name;
    EXPECT_NEAR(present.mfu, r.mfu, 0.03) << r.cfg.name;
    EXPECT_NEAR(present.hfu, r.hfu, 0.03) << r.cfg.name;
    EXPECT_GT(present.hfu, present.mfu) << r.cfg.name;
  }
  // MFU improves with scale (22B -> 530B).
  const auto m22 = perf::end_to_end(rows[0].cfg, mm, true, Recompute::kSelective);
  const auto m530 = perf::end_to_end(rows[2].cfg, mm, true, Recompute::kSelective);
  EXPECT_GT(m530.mfu, m22.mfu);
}

TEST(Table5, DataParallelScalingNote) {
  // §6.3: 530B at 8-way DP: 37.83 s -> 39.15 s, MFU 56.0% -> 54.2%.
  const MachineModel mm = MachineModel::a100();
  const ModelConfig cfg = ModelConfig::gpt_530b();
  const double dp_seconds = perf::dp_iteration_seconds(cfg, mm, 37.83, 8);
  EXPECT_NEAR(dp_seconds, 39.15, 0.8);
  // MFU with the batch scaled by dp and gpus scaled by dp: the
  // per-replica model FLOPs rate just divides by the new time.
  const double dp_mfu = perf::mfu(cfg, dp_seconds, 312e12);
  EXPECT_NEAR(dp_mfu, 0.542, 0.015);
}

// ------------------------------------------------------ simulator shape

TEST(PipelineSim, SingleStageHasNoBubble) {
  const MachineModel mm = MachineModel::a100();
  ModelConfig cfg = ModelConfig::gpt_22b();  // p = 1
  const auto est = perf::estimate_iteration_time(cfg, mm, true,
                                                 Recompute::kSelective);
  EXPECT_NEAR(est.bubble_fraction, 0.0, 1e-9);
}

TEST(PipelineSim, BubbleApproximatesClosedForm) {
  // Plain 1F1B bubble fraction ≈ (p-1)/(n + p - 1) when per-stage times
  // are uniform; p2p wire and first/last-stage extras perturb slightly.
  const MachineModel mm = MachineModel::a100();
  ModelConfig cfg = ModelConfig::gpt_175b();
  cfg.interleave_m = 1;
  const auto est =
      perf::estimate_iteration_time(cfg, mm, true, Recompute::kSelective);
  const double n = static_cast<double>(cfg.microbatches());
  const double expect = (cfg.p - 1) / (n + cfg.p - 1);
  EXPECT_NEAR(est.bubble_fraction, expect, 0.05);
}

TEST(PipelineSim, InterleavingShrinksBubble) {
  const MachineModel mm = MachineModel::a100();
  ModelConfig plain = ModelConfig::gpt_175b();
  plain.interleave_m = 1;
  ModelConfig inter = ModelConfig::gpt_175b();  // m = 3
  const auto ep =
      perf::estimate_iteration_time(plain, mm, true, Recompute::kSelective);
  const auto ei =
      perf::estimate_iteration_time(inter, mm, true, Recompute::kSelective);
  EXPECT_LT(ei.bubble_fraction, ep.bubble_fraction);
}

// ------------------------------------------------------ overlap term

TEST(OverlapTerm, MaxReplacesSerialSum) {
  const MachineModel mm = MachineModel::a100();
  const ModelConfig cfg = ModelConfig::gpt_22b();
  const auto lt = perf::layer_time(cfg, mm, true, Recompute::kSelective);
  EXPECT_GT(lt.backward_comm, 0.0);
  EXPECT_LE(lt.backward_comm, lt.backward);
  EXPECT_DOUBLE_EQ(lt.backward_with_recompute(false),
                   lt.backward + lt.recompute);
  EXPECT_DOUBLE_EQ(
      lt.backward_with_recompute(true),
      lt.backward - lt.backward_comm +
          std::max(lt.backward_comm, lt.recompute));
  // Hiding the replay can only help (or tie).
  EXPECT_LE(lt.backward_with_recompute(true),
            lt.backward_with_recompute(false));
}

TEST(OverlapTerm, IterationEstimateHonoursGating) {
  const MachineModel mm = MachineModel::a100();
  const ModelConfig cfg = ModelConfig::gpt_175b();
  // Selective: overlapping the replay never slows the iteration down.
  const auto sel_off =
      perf::estimate_iteration_time(cfg, mm, true, Recompute::kSelective);
  const auto sel_on = perf::estimate_iteration_time(
      cfg, mm, true, Recompute::kSelective, /*overlap_recompute=*/true);
  EXPECT_LE(sel_on.seconds, sel_off.seconds);
  // Full-layer replays contain collectives and cannot overlap: the
  // flag must be a no-op.
  const auto full_off =
      perf::estimate_iteration_time(cfg, mm, true, Recompute::kFull);
  const auto full_on = perf::estimate_iteration_time(
      cfg, mm, true, Recompute::kFull, /*overlap_recompute=*/true);
  EXPECT_DOUBLE_EQ(full_on.seconds, full_off.seconds);
}

TEST(PipelineSim, MoreMicrobatchesAmortizeTheBubble) {
  const MachineModel mm = MachineModel::a100();
  ModelConfig small = ModelConfig::gpt_175b();
  small.interleave_m = 1;
  ModelConfig big = small;
  big.global_batch = small.global_batch * 4;
  const auto es = perf::estimate_iteration_time(small, mm, true,
                                                Recompute::kSelective);
  const auto eb =
      perf::estimate_iteration_time(big, mm, true, Recompute::kSelective);
  EXPECT_LT(eb.bubble_fraction, es.bubble_fraction);
}

}  // namespace
}  // namespace mls
