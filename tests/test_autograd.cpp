// Tests for the autograd engine: gradient correctness of composed
// graphs, activation-memory accounting, and checkpoint (recompute)
// semantics — replay exactness, memory reduction, and gradient
// equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/checkpoint.h"
#include "autograd/engine.h"
#include "autograd/functions.h"
#include "common/memtracker.h"

namespace mls::ag {
namespace {

class AutogradTest : public ::testing::Test {
 protected:
  void SetUp() override { MemoryTracker::instance().reset(); }
};

// Computes loss = sum(elementwise_weights * f(x)) numerically for grad checks.
double weighted_sum(const Tensor& t, const Tensor& w) {
  double acc = 0;
  for (int64_t i = 0; i < t.numel(); ++i) acc += t.data()[i] * w.data()[i];
  return acc;
}

TEST_F(AutogradTest, MatmulGradientsNumerical) {
  Rng rng(1);
  Tensor xv = Tensor::randn(Shape{{3, 4}}, rng);
  Tensor wv = Tensor::randn(Shape{{4, 5}}, rng);
  Tensor dy = Tensor::randn(Shape{{3, 5}}, rng);

  Var x(xv.clone(), true);
  Var w = Var::param(wv.clone(), "w");
  Var y = matmul(x, w);
  backward(y, dy);

  auto loss = [&](const Tensor& xx, const Tensor& ww) {
    return weighted_sum(ops::matmul(xx, ww), dy);
  };
  const float eps = 1e-3f;
  for (int i = 0; i < 12; ++i) {
    Tensor xp = xv.clone();
    xp.data()[i] += eps;
    Tensor xm = xv.clone();
    xm.data()[i] -= eps;
    EXPECT_NEAR(x.grad().data()[i], (loss(xp, wv) - loss(xm, wv)) / (2 * eps), 1e-2);
  }
  for (int i = 0; i < 20; ++i) {
    Tensor wp = wv.clone();
    wp.data()[i] += eps;
    Tensor wm = wv.clone();
    wm.data()[i] -= eps;
    EXPECT_NEAR(w.grad().data()[i], (loss(xv, wp) - loss(xv, wm)) / (2 * eps), 1e-2);
  }
}

TEST_F(AutogradTest, MatmulTransBGradients) {
  Rng rng(2);
  Tensor xv = Tensor::randn(Shape{{3, 4}}, rng);
  Tensor wv = Tensor::randn(Shape{{5, 4}}, rng);  // used as w^T
  Tensor dy = Tensor::randn(Shape{{3, 5}}, rng);
  Var x(xv.clone(), true);
  Var w = Var::param(wv.clone());
  Var y = matmul(x, w, /*trans_b=*/true);
  backward(y, dy);
  auto loss = [&](const Tensor& xx, const Tensor& ww) {
    return weighted_sum(ops::matmul(xx, ww, false, true), dy);
  };
  const float eps = 1e-3f;
  for (int i = 0; i < 12; ++i) {
    Tensor xp = xv.clone();
    xp.data()[i] += eps;
    Tensor xm = xv.clone();
    xm.data()[i] -= eps;
    EXPECT_NEAR(x.grad().data()[i], (loss(xp, wv) - loss(xm, wv)) / (2 * eps), 1e-2);
  }
  for (int i = 0; i < 20; ++i) {
    Tensor wp = wv.clone();
    wp.data()[i] += eps;
    Tensor wm = wv.clone();
    wm.data()[i] -= eps;
    EXPECT_NEAR(w.grad().data()[i], (loss(xv, wp) - loss(xv, wm)) / (2 * eps), 1e-2);
  }
}

TEST_F(AutogradTest, BmmTransBGradients) {
  Rng rng(3);
  Tensor av = Tensor::randn(Shape{{2, 3, 4}}, rng);
  Tensor bv = Tensor::randn(Shape{{2, 3, 4}}, rng);
  Tensor dy = Tensor::randn(Shape{{2, 3, 3}}, rng);
  Var a(av.clone(), true);
  Var b(bv.clone(), true);
  Var y = bmm(a, b, /*trans_b=*/true);
  backward(y, dy);
  auto loss = [&](const Tensor& aa, const Tensor& bb) {
    return weighted_sum(ops::bmm(aa, bb, false, true), dy);
  };
  const float eps = 1e-3f;
  for (int i = 0; i < 24; ++i) {
    Tensor ap = av.clone();
    ap.data()[i] += eps;
    Tensor am = av.clone();
    am.data()[i] -= eps;
    EXPECT_NEAR(a.grad().data()[i], (loss(ap, bv) - loss(am, bv)) / (2 * eps), 1e-2);
    Tensor bp = bv.clone();
    bp.data()[i] += eps;
    Tensor bm = bv.clone();
    bm.data()[i] -= eps;
    EXPECT_NEAR(b.grad().data()[i], (loss(av, bp) - loss(av, bm)) / (2 * eps), 1e-2);
  }
}

TEST_F(AutogradTest, FanOutAccumulatesGradients) {
  // y = x + x: dy/dx = 2.
  Var x(Tensor::full(Shape{{4}}, 3.f), true);
  Var y = add(x, x);
  backward(y);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.grad().data()[i], 2.f);
}

TEST_F(AutogradTest, ChainWithResidualAndLayerNorm) {
  // A transformer-ish chain: layernorm -> matmul -> gelu -> residual.
  Rng rng(4);
  const int rows = 4, h = 6;
  Tensor xv = Tensor::randn(Shape{{rows, h}}, rng);
  Tensor wv = Tensor::randn(Shape{{h, h}}, rng, 0.4f);
  Tensor gv = Tensor::randn(Shape{{h}}, rng);
  Tensor bv = Tensor::randn(Shape{{h}}, rng);
  Tensor dy = Tensor::randn(Shape{{rows, h}}, rng);

  auto forward_val = [&](const Tensor& xx) {
    auto ln = ops::layernorm(xx, gv, bv);
    Tensor z = ops::gelu(ops::matmul(ln.y, wv));
    return ops::add(z, xx);
  };

  Var x(xv.clone(), true);
  Var w = Var::param(wv.clone());
  Var gamma = Var::param(gv.clone());
  Var beta = Var::param(bv.clone());
  Var out = add(gelu(matmul(layernorm(x, gamma, beta), w)), x);
  backward(out, dy);

  const float eps = 1e-3f;
  for (int i = 0; i < rows * h; ++i) {
    Tensor xp = xv.clone();
    xp.data()[i] += eps;
    Tensor xm = xv.clone();
    xm.data()[i] -= eps;
    const double num =
        (weighted_sum(forward_val(xp), dy) - weighted_sum(forward_val(xm), dy)) /
        (2 * eps);
    EXPECT_NEAR(x.grad().data()[i], num, 5e-2) << "i=" << i;
  }
}

TEST_F(AutogradTest, SoftmaxDropoutChainGradient) {
  Rng rng(5);
  Tensor xv = Tensor::randn(Shape{{2, 5}}, rng);
  Tensor dy = Tensor::randn(Shape{{2, 5}}, rng);
  const uint64_t seed = 77;
  const auto map = ops::IndexMap::identity(Shape{{2, 5}});

  Var x(xv.clone(), true);
  Var y = dropout(softmax(x), 0.3f, seed, map);
  backward(y, dy);

  auto forward_val = [&](const Tensor& xx) {
    Tensor sm = ops::softmax_lastdim(xx);
    return ops::dropout_stateless(sm, 0.3f, seed, map).y;
  };
  const float eps = 1e-3f;
  for (int i = 0; i < 10; ++i) {
    Tensor xp = xv.clone();
    xp.data()[i] += eps;
    Tensor xm = xv.clone();
    xm.data()[i] -= eps;
    const double num =
        (weighted_sum(forward_val(xp), dy) - weighted_sum(forward_val(xm), dy)) /
        (2 * eps);
    EXPECT_NEAR(x.grad().data()[i], num, 1e-2);
  }
}

TEST_F(AutogradTest, EmbeddingCrossEntropyEndToEnd) {
  Rng rng(6);
  const int64_t v = 7, h = 4;
  Var table = Var::param(Tensor::randn(Shape{{v, h}}, rng), "emb");
  std::vector<int64_t> ids = {1, 3, 5};
  std::vector<int64_t> targets = {2, 0, 6};
  Var e = embedding(table, ids);
  // Tied output layer: logits = e @ table^T.
  Var logits = matmul(e, table, /*trans_b=*/true);
  Var loss = cross_entropy(logits, targets);
  backward(loss);
  EXPECT_TRUE(table.has_grad());
  EXPECT_GT(table.grad().max_abs(), 0.f);
  // Loss is positive and finite.
  EXPECT_GT(loss.item(), 0.f);
  EXPECT_TRUE(std::isfinite(loss.item()));
}

TEST_F(AutogradTest, StructuralOpsRoundTripGradient) {
  Rng rng(7);
  Tensor xv = Tensor::randn(Shape{{4, 2, 6}}, rng);
  Var x(xv.clone(), true);
  auto parts = chunk(x, 3, /*dim=*/2);
  Var y = cat({parts[2], parts[0], parts[1]}, 2);
  Var z = permute(y, {1, 0, 2});
  Var out = reshape(z, Shape{{2 * 4 * 6}});
  Tensor dy = Tensor::randn(Shape{{48}}, rng);
  backward(out, dy);
  // Gradient must be a permutation of dy with the same multiset of values.
  EXPECT_TRUE(x.has_grad());
  double s1 = 0, s2 = 0;
  for (int64_t i = 0; i < 48; ++i) {
    s1 += dy.data()[i];
    s2 += x.grad().data()[i];
  }
  EXPECT_NEAR(s1, s2, 1e-4);
}

// ------------------------------------------------------ memory tracking

TEST_F(AutogradTest, TrackerChargesSavedTensors) {
  auto& mt = MemoryTracker::instance();
  Rng rng(8);
  Var x(Tensor::randn(Shape{{10, 8}}, rng), true);  // F16: 2 bytes/elem
  Var w = Var::param(Tensor::randn(Shape{{8, 8}}, rng));
  EXPECT_EQ(mt.current_bytes(), 0);
  Var y = matmul(x, w);
  // x saved (counted, 160 bytes); w saved but uncounted (parameter).
  EXPECT_EQ(mt.current_major_bytes(), 10 * 8 * 2);
  Var g = gelu(y);
  EXPECT_EQ(mt.current_major_bytes(), 2 * 10 * 8 * 2);  // + gelu input
  backward(g, Tensor::full(Shape{{10, 8}}, 1.f));
  // Backward released everything.
  EXPECT_EQ(mt.current_bytes(), 0);
  EXPECT_GE(mt.peak_bytes(), 2 * 10 * 8 * 2);
}

TEST_F(AutogradTest, DropoutMaskChargedAtOneByte) {
  auto& mt = MemoryTracker::instance();
  Rng rng(9);
  Var x(Tensor::randn(Shape{{16, 4}}, rng), true);
  Var y = dropout(x, 0.1f, 1, ops::IndexMap::identity(Shape{{16, 4}}));
  EXPECT_EQ(mt.current_major_bytes(), 64);  // 64 elements * 1 byte
  backward(y, Tensor::full(Shape{{16, 4}}, 1.f));
  EXPECT_EQ(mt.current_bytes(), 0);
}

TEST_F(AutogradTest, LayerNormMinorBuffersTrackedSeparately) {
  auto& mt = MemoryTracker::instance();
  Rng rng(10);
  const int rows = 6, h = 16;
  Var x(Tensor::randn(Shape{{rows, h}}, rng), true);
  Var gamma = Var::param(Tensor::full(Shape{{h}}, 1.f));
  Var beta = Var::param(Tensor::zeros(Shape{{h}}));
  Var y = layernorm(x, gamma, beta);
  EXPECT_EQ(mt.current_major_bytes(), rows * h * 2);   // input, fp16
  EXPECT_EQ(mt.current_minor_bytes(), 2 * rows * 4);   // mean + rstd, fp32
  backward(y, Tensor::full(Shape{{rows, h}}, 1.f));
  EXPECT_EQ(mt.current_bytes(), 0);
}

TEST_F(AutogradTest, NoGradModeSavesNothing) {
  auto& mt = MemoryTracker::instance();
  Rng rng(11);
  Var x(Tensor::randn(Shape{{10, 8}}, rng), true);
  Var w = Var::param(Tensor::randn(Shape{{8, 8}}, rng));
  {
    NoGradGuard ng;
    Var y = gelu(matmul(x, w));
    EXPECT_FALSE(y.requires_grad());
    EXPECT_EQ(y.grad_fn(), nullptr);
  }
  EXPECT_EQ(mt.current_bytes(), 0);
}

// ---------------------------------------------------------- checkpoint

Var mlp_block(const Var& x, const Var& w1, const Var& w2, uint64_t seed) {
  Var h = gelu(matmul(x, w1));
  Var y = matmul(h, w2);
  return dropout(y, 0.2f, seed, ops::IndexMap::identity(y.value().shape()));
}

TEST_F(AutogradTest, CheckpointGradsMatchNoCheckpoint) {
  Rng rng(12);
  Tensor xv = Tensor::randn(Shape{{6, 8}}, rng);
  Tensor w1v = Tensor::randn(Shape{{8, 32}}, rng, 0.3f);
  Tensor w2v = Tensor::randn(Shape{{32, 8}}, rng, 0.3f);
  Tensor dy = Tensor::randn(Shape{{6, 8}}, rng);

  // Reference: no checkpoint.
  Var x1(xv.clone(), true);
  Var w1a = Var::param(w1v.clone());
  Var w2a = Var::param(w2v.clone());
  Var out1 = mlp_block(x1, w1a, w2a, 99);
  backward(out1, dy);

  // Checkpointed.
  Var x2(xv.clone(), true);
  Var w1b = Var::param(w1v.clone());
  Var w2b = Var::param(w2v.clone());
  Var out2 = checkpoint(
      [](const std::vector<Var>& ins) {
        return mlp_block(ins[0], ins[1], ins[2], 99);
      },
      {x2, w1b, w2b});
  backward(out2, dy);

  EXPECT_TRUE(out1.value().allclose(out2.value(), 1e-6f, 1e-7f));
  EXPECT_TRUE(x1.grad().allclose(x2.grad(), 1e-5f, 1e-7f));
  EXPECT_TRUE(w1a.grad().allclose(w1b.grad(), 1e-5f, 1e-7f));
  EXPECT_TRUE(w2a.grad().allclose(w2b.grad(), 1e-5f, 1e-7f));
}

TEST_F(AutogradTest, CheckpointStoresOnlyInputs) {
  auto& mt = MemoryTracker::instance();
  Rng rng(13);
  const int64_t rows = 6, h = 8, ff = 32;
  Tensor xv = Tensor::randn(Shape{{rows, h}}, rng);
  Var w1 = Var::param(Tensor::randn(Shape{{h, ff}}, rng, 0.3f));
  Var w2 = Var::param(Tensor::randn(Shape{{ff, h}}, rng, 0.3f));

  // Without checkpoint: gelu input (rows*ff) + matmul inputs + mask.
  Var xa(xv.clone(), true);
  Var ya = mlp_block(xa, w1, w2, 5);
  const int64_t full_bytes = mt.current_major_bytes();
  backward(ya, Tensor::full(ya.value().shape(), 1.f));
  EXPECT_EQ(mt.current_bytes(), 0);

  // With checkpoint: only the block input x (rows*h fp16).
  Var xb(xv.clone(), true);
  Var yb = checkpoint(
      [&](const std::vector<Var>& ins) { return mlp_block(ins[0], w1, w2, 5); },
      {xb});
  EXPECT_EQ(mt.current_major_bytes(), rows * h * 2);
  EXPECT_LT(mt.current_major_bytes(), full_bytes);
  backward(yb, Tensor::full(yb.value().shape(), 1.f));
  EXPECT_EQ(mt.current_bytes(), 0);
}

TEST_F(AutogradTest, CheckpointReplayReproducesDropoutExactly) {
  // With stateless dropout, the checkpoint output (first forward) and
  // the replayed forward in backward see the same mask; gradients of a
  // pure-dropout region therefore match the no-checkpoint path exactly.
  Rng rng(14);
  Tensor xv = Tensor::randn(Shape{{128}}, rng);
  Tensor dy = Tensor::full(Shape{{128}}, 1.f);
  const auto map = ops::IndexMap::identity(Shape{{128}});

  Var x1(xv.clone(), true);
  Var y1 = dropout(x1, 0.5f, 321, map);
  backward(y1, dy);

  Var x2(xv.clone(), true);
  Var y2 = checkpoint(
      [&](const std::vector<Var>& ins) { return dropout(ins[0], 0.5f, 321, map); },
      {x2});
  backward(y2, dy);

  EXPECT_TRUE(y1.value().allclose(y2.value(), 0.f, 0.f));  // bitwise
  EXPECT_TRUE(x1.grad().allclose(x2.grad(), 0.f, 0.f));
}

TEST_F(AutogradTest, NestedCheckpointInnerDegenerates) {
  // An inner checkpoint under an outer one must not double-store.
  Rng rng(15);
  Tensor xv = Tensor::randn(Shape{{4, 8}}, rng);
  Var w = Var::param(Tensor::randn(Shape{{8, 8}}, rng, 0.3f));
  Var x(xv.clone(), true);
  auto inner = [&](const std::vector<Var>& ins) { return gelu(matmul(ins[0], w)); };
  auto outer = [&](const std::vector<Var>& ins) {
    Var mid = checkpoint(inner, {ins[0]});
    return matmul(mid, w);
  };
  Var y = checkpoint(outer, {x});
  auto& mt = MemoryTracker::instance();
  EXPECT_EQ(mt.current_major_bytes(), 4 * 8 * 2);  // only outer input
  backward(y, Tensor::full(y.value().shape(), 1.f));
  EXPECT_EQ(mt.current_bytes(), 0);
  EXPECT_TRUE(x.has_grad());
}

// Stateless dropout shard consistency: mask of a shard equals the
// corresponding region of the full mask.
TEST_F(AutogradTest, StatelessDropoutShardMatchesGlobal) {
  Rng rng(16);
  const Shape global{{8, 4, 6}};
  Tensor x = Tensor::randn(global, rng);
  auto full = ops::dropout_stateless(x, 0.4f, 9, ops::IndexMap::identity(global));
  // Shard along dim 0 into 4 parts (sequence parallelism pattern).
  for (int r = 0; r < 4; ++r) {
    Tensor xs = ops::slice(x, 0, r * 2, 2);
    auto shard = ops::dropout_stateless(xs, 0.4f, 9,
                                        ops::IndexMap::shard(global, 0, r * 2, 2));
    Tensor expect = ops::slice(full.y, 0, r * 2, 2);
    EXPECT_TRUE(shard.y.allclose(expect, 0.f, 0.f)) << "rank " << r;
  }
  // Shard along an inner dim (tensor-parallel head split pattern).
  for (int r = 0; r < 3; ++r) {
    Tensor xs = ops::slice(x, 2, r * 2, 2);
    auto shard = ops::dropout_stateless(xs, 0.4f, 9,
                                        ops::IndexMap::shard(global, 2, r * 2, 2));
    Tensor expect = ops::slice(full.y, 2, r * 2, 2);
    EXPECT_TRUE(shard.y.allclose(expect, 0.f, 0.f)) << "rank " << r;
  }
}

}  // namespace
}  // namespace mls::ag
