// Lint fixture (never compiled): must NOT fire raw-storage — tests
// may collect host-side float lists freely.
void collect_losses() {
  std::vector<float> losses;
  losses.push_back(0.5f);
}
