// Lint fixture (never compiled): must NOT fire raw-storage — pooled
// tensors and non-float bookkeeping are fine, and a suppressed
// host-side staging vector.
void stage_partials() {
  Tensor scratch = Tensor::zeros(Shape{{1024}});
  std::vector<int64_t> offsets(64);
}

void host_staging() {
  std::vector<float> staged(8);  // lint:allow(raw-storage)
}
