// Lint fixture (never compiled): must NOT fire comm-under-lock — the
// guard's scope closes before the collective, and a suppressed
// deliberate case.
void exchange(comm::Comm& c, Tensor& x, std::mutex& mu) {
  {
    std::lock_guard<std::mutex> g(mu);
    x.zero();
  }
  c.all_reduce(x);
}

void deliberate(comm::Comm& c, std::mutex& mu) {
  std::lock_guard<std::mutex> g(mu);
  c.barrier();  // lint:allow(comm-under-lock)
}
