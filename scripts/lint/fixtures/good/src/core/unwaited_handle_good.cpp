// Lint fixture (never compiled): must NOT fire unwaited-handle —
// every handle is settled (waited, returned, moved into storage) or
// explicitly suppressed.
void waited(comm::Comm& c, Tensor& x) {
  CommHandle h = c.iall_reduce(x);
  h.wait();
}

CommHandle returned(comm::Comm& c, Tensor& x) {
  CommHandle h = c.iall_reduce(x);
  return h;
}

void stored(comm::Comm& c, Tensor& x, std::vector<comm::CommHandle>& out) {
  auto pending = c.isend(x, 1, 7);
  out.push_back(std::move(pending));
}

void fire_and_forget(comm::Comm& c, Tensor& x) {
  CommHandle h = c.iall_reduce(x);  // lint:allow(unwaited-handle)
}
