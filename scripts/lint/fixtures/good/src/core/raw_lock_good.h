// Lint fixture (never compiled): must NOT fire raw-lock — guard
// idiom plus a deliberately suppressed manual lock.
#pragma once
#include <mutex>

struct RankState {
  std::mutex state_mu;
  void touch() { std::lock_guard<std::mutex> g(state_mu); }
  void pin_for_handoff() {
    state_mu.lock();  // lint:allow(raw-lock)
    state_mu.unlock();
  }
};
