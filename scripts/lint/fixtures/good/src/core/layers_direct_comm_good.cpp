// Lint fixture (never compiled): layers that consult the ParallelPlan
// stay clean; a deliberate exception is suppressible per line.
#include "core/parallel_plan.h"

namespace mls::core {

ag::Var ColumnParallelLinear_forward(const ag::Var& x, const ParallelEnv& env) {
  // The plan owns which collective fires here (f vs g), so swapping
  // MLS_PLAN never needs a layer edit.
  return env.plan().column_matmul(x, weight, false, env, "fixture_in");
}

ag::Var debug_probe(const ag::Var& x, const ParallelEnv& env) {
  return copy_to_tensor_parallel(x, env.tp);  // lint:allow(layers-direct-comm)
}

}  // namespace mls::core
