// Lint fixture (never compiled): must NOT fire hot-permute — the
// specialized layout kernel, plus a suppressed boundary case.
Tensor to_bhsd(const Tensor& x) {
  return ops::sbh_to_bhsd(x, 4);
}

Tensor odd_layout(const Tensor& x) {
  return ops::permute(x, {2, 0, 1});  // lint:allow(hot-permute)
}
