// Lint fixture (never compiled): must NOT fire raw-storage — the pool
// itself (src/tensor, src/memory) owns its raw float backing.
void arena_grow() {
  std::vector<float> backing(1 << 20);
}
