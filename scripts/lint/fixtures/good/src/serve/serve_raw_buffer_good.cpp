// Lint fixture (never compiled): must NOT fire serve-raw-buffer —
// id/latency bookkeeping is fine, and a suppressed wire buffer.
void bookkeeping() {
  std::vector<int64_t> block_table;
  std::vector<double> step_latencies;
}

void pinned_wire_io() {
  std::vector<uint8_t> frame;  // lint:allow(serve-raw-buffer)
}
