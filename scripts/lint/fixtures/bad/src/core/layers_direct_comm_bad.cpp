// Lint fixture (never compiled): MUST fire layers-direct-comm three
// times — the include, a raw Comm collective, and a conjugate-pair
// helper all bypass the ParallelPlan.
#include "core/collectives.h"

namespace mls::core {

ag::Var ColumnParallelLinear_forward(const ag::Var& x, const ParallelEnv& env) {
  ag::Var gathered = copy_to_tensor_parallel(x, env.tp);
  Tensor partial = gathered.value();
  env.tp.all_reduce(partial.data(), partial.numel());
  return gathered;
}

}  // namespace mls::core
