// Lint fixture (never compiled): MUST fire raw-lock.
#pragma once
#include <mutex>

struct RankState {
  std::mutex state_mu;
  void touch() {
    state_mu.lock();
    state_mu.unlock();
  }
};
