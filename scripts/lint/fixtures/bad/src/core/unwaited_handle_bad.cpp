// Lint fixture (never compiled): MUST fire unwaited-handle.
void fire_and_forget(comm::Comm& c, Tensor& x) {
  CommHandle pending = c.iall_reduce(x);
  x.zero();
}
