// Lint fixture (never compiled): MUST fire comm-under-lock.
void exchange(comm::Comm& c, Tensor& x, std::mutex& mu) {
  std::lock_guard<std::mutex> g(mu);
  c.all_reduce(x);
}
