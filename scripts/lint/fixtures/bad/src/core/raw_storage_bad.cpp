// Lint fixture (never compiled): MUST fire raw-storage (twice).
void stage_partials() {
  float* scratch = new float[1024];
  std::vector<float> partials(64);
  delete[] scratch;
}
