// Lint fixture (never compiled): MUST fire hot-permute.
Tensor to_bhsd(const Tensor& x) {
  return ops::permute(x, {1, 0, 2});
}
