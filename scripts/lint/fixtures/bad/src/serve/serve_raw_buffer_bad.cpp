// Lint fixture (never compiled): MUST fire serve-raw-buffer (twice).
void cache_sequence() {
  void* region = malloc(4096);
  std::vector<uint8_t> kv_bytes(4096);
  free(region);
}
