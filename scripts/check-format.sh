#!/usr/bin/env bash
# Checks that every C++ source under src/ (including src/analysis)
# tests/ bench/ examples/ is clang-format clean (per the repo
# .clang-format). Exits nonzero listing offending files; with no
# clang-format on PATH it skips with a warning so local builds on
# minimal images keep working (CI installs it).
set -u

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-}"
if [ -z "$CLANG_FORMAT" ]; then
  for candidate in clang-format clang-format-18 clang-format-17 \
      clang-format-16 clang-format-15 clang-format-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CLANG_FORMAT="$candidate"
      break
    fi
  done
fi
if [ -z "$CLANG_FORMAT" ]; then
  echo "check-format: clang-format not found; skipping." >&2
  exit 0
fi

bad=0
while IFS= read -r f; do
  if ! "$CLANG_FORMAT" --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    bad=1
  fi
done < <(find src tests bench examples -name '*.cpp' -o -name '*.h' | sort)

if [ "$bad" -ne 0 ]; then
  echo ""
  echo "Run: $CLANG_FORMAT -i \$(find src tests bench examples -name '*.cpp' -o -name '*.h')"
  exit 1
fi
echo "check-format: all files clean."
