#!/usr/bin/env bash
# Self-test for scripts/lint.sh: every rule in the registry must fire
# on its bad fixture tree (naming the offending fixture file) and stay
# silent — including honoring // lint:allow(...) suppressions — on the
# good tree. Run by CI next to the real lint pass; a rule without
# fixtures fails the coverage check, so new rules arrive tested.
set -u

cd "$(dirname "$0")/.."
LINT=scripts/lint.sh
BAD="$(pwd)/scripts/lint/fixtures/bad"
GOOD="$(pwd)/scripts/lint/fixtures/good"
fails=0

fail() {
  echo "lint_test FAIL: $1"
  fails=1
}

# expect_fires RULE NEEDLE: the rule must exit nonzero on the bad tree
# and its output must name NEEDLE (the fixture that seeded the hazard).
expect_fires() {
  local rule="$1" needle="$2" out
  out=$("$LINT" --root "$BAD" --only "$rule" 2>&1)
  if [ $? -eq 0 ]; then
    fail "rule '$rule' did not fire on $BAD"
    return
  fi
  if ! printf '%s\n' "$out" | grep -q "$needle"; then
    fail "rule '$rule' fired but did not name $needle:
$out"
  fi
}

# expect_clean RULE: the rule must exit zero on the good tree (real
# negatives and suppressed positives alike).
expect_clean() {
  local rule="$1" out
  out=$("$LINT" --root "$GOOD" --only "$rule" 2>&1)
  if [ $? -ne 0 ]; then
    fail "rule '$rule' fired on the good tree:
$out"
  fi
}

expect_fires raw-lock         raw_lock_bad.h
expect_fires comm-under-lock  comm_under_lock_bad.cpp
expect_fires unwaited-handle  unwaited_handle_bad.cpp
expect_fires raw-storage      raw_storage_bad.cpp
expect_fires serve-raw-buffer serve_raw_buffer_bad.cpp
expect_fires hot-permute      hot_permute_bad.cpp
expect_fires layers-direct-comm layers_direct_comm_bad.cpp

for rule in $("$LINT" --list | awk '{print $1}'); do
  expect_clean "$rule"
done

# Registry coverage: every listed rule must have an expect_fires case
# above (i.e., a bad fixture whose name encodes the rule).
for rule in $("$LINT" --list | awk '{print $1}'); do
  slug=$(printf '%s' "$rule" | tr - _)
  if ! find "$BAD" -name "${slug}_bad.*" | grep -q .; then
    fail "rule '$rule' has no bad fixture (${slug}_bad.*)"
  fi
done

# Unknown rules are an error, not a silent no-op.
if "$LINT" --only no-such-rule >/dev/null 2>&1; then
  fail "--only with an unknown rule should exit nonzero"
fi

if [ "$fails" -eq 0 ]; then
  echo "lint_test: all rules fire on bad fixtures and stay clean on good."
fi
exit "$fails"
