#!/usr/bin/env bash
# Custom greppable lint checks for hazards clang-tidy does not model in
# this codebase (thread-per-rank simulator; see DESIGN.md "Analysis
# layer"). Pure bash+grep+awk: runs on the minimal container image, no
# clang tooling needed.
#
# The checks form a declarative registry: every rule has a name, a
# scanned-file filter, a one-line rationale, and a matcher function
# `match_<rule>` that emits raw `file:line: message` hits. The driver
# owns everything else — file discovery, the `// lint:allow(<rule>)`
# suppression protocol (checked on the reported line, centrally), the
# grouped output, and the exit status. Adding a rule = adding one row
# to RULES plus one matcher function.
#
# Usage:
#   lint.sh                 run every rule over the repo
#   lint.sh --list          print the registry (name + rationale)
#   lint.sh --only RULE     run a single rule
#   lint.sh --root DIR      scan DIR instead of the repo root (the
#                           self-test points this at fixture trees;
#                           see scripts/lint_test.sh)
#
# Suppress a deliberate instance with a comment on the offending line:
#   // lint:allow(<rule-name>)
set -u

# ------------------------------------------------------------ registry
# name | rationale (shown in --list and in failure headers)
RULES=(
  "raw-lock|bare .lock() on a mutex-named variable: locks must be held through std::lock_guard / unique_lock / scoped_lock so an exception (poisoned barrier, ledger mismatch) cannot leave a mutex locked forever"
  "comm-under-lock|blocking collective/p2p/barrier while a lock guard is live: a rank blocking in a rendezvous while holding a lock deadlocks any peer that needs the same lock to reach its rendezvous"
  "unwaited-handle|a named CommHandle never wait()ed/result()ed/abandon()ed/moved/stored/returned: dropped handles swallow errors from the async op (the runtime leak audit is the dynamic side of this check)"
  "raw-storage|tensor-scale float buffers allocated outside the pool: new float[] anywhere, or std::vector<float> in src/ outside src/tensor + src/memory — bulk float storage must come from Storage so the arena's stats see every buffer"
  "serve-raw-buffer|per-request buffer in src/serve off the pool arena (malloc, new[], byte/float vectors): serving state scales with concurrent sequences; KV blocks and decode scratch must be Tensors so bench_serve's numbers see every byte"
  "hot-permute|generic ops::/ag::permute on the model hot path (src/core, src/model, src/pipeline, src/train, src/runtime): it is an element-at-a-time gather; use the specialized blocked copies (ops::sbh_to_bhsd etc.)"
  "layers-direct-comm|direct collective wiring in src/core/layers.*: layers must route every TP/SP communication decision through the ParallelPlan strategy (env.plan()) — including core/collectives.h or calling Comm collectives / conjugate-pair helpers there re-hardwires the schedule the plan owns"
)

rule_names() {
  local row
  for row in "${RULES[@]}"; do printf '%s\n' "${row%%|*}"; done
}

rule_rationale() {
  local row
  for row in "${RULES[@]}"; do
    if [ "${row%%|*}" = "$1" ]; then
      printf '%s\n' "${row#*|}"
      return
    fi
  done
}

# ------------------------------------------------------------ matchers
# Each matcher reads the newline-separated scanned file list on stdin
# and emits raw hits as `file:line: message` (no indent, no
# suppression handling — the driver does both).

match_raw_lock() {
  # Variables named *mu / *mutex / *mtx (with optional trailing _)
  # must not be locked manually.
  xargs -r grep -nE '\b[A-Za-z_][A-Za-z0-9_]*(mu|mutex|mtx)_?\.lock\(\)' \
      /dev/null 2>/dev/null |
    awk -F: '{printf "%s:%s: raw mutex .lock() without a guard\n", $1, $2}'
}

match_comm_under_lock() {
  # Brace-depth scan: after a std::{lock_guard,unique_lock,scoped_lock}
  # declaration, any blocking comm call before the guard's scope closes
  # is flagged. Condvar waits are not comm calls and do not trip this.
  xargs -r awk '
    FNR == 1 { depth = 0; nlocks = 0 }
    {
      line = $0
      sub(/\/\/.*/, "", line)
      gsub(/"([^"\\]|\\.)*"/, "\"\"", line)
      is_lock = (line ~ /std::(lock_guard|unique_lock|scoped_lock)[ \t]*</)
      is_comm = (line ~ /\.(all_reduce|all_gather|reduce_scatter|broadcast|barrier|recv|send)[ \t]*\(/ \
                 || line ~ /\.arrive_and_wait[ \t]*\(/)
      if (is_comm && nlocks > 0 && !is_lock)
        printf "%s:%d: blocking comm call while a lock guard is live\n", \
               FILENAME, FNR
      n = length(line)
      for (i = 1; i <= n; i++) {
        ch = substr(line, i, 1)
        if (ch == "{") depth++
        else if (ch == "}") {
          depth--
          while (nlocks > 0 && lockdepth[nlocks] > depth) nlocks--
        }
      }
      if (is_lock) { nlocks++; lockdepth[nlocks] = depth }
    }
  '
}

match_unwaited_handle() {
  # A `CommHandle name = ...` (or `auto name = c.i*(...)`) declaration
  # must be settled — name.wait()/result()/abandon(), std::move(name),
  # push_back/emplace_back(name), or `return name` — before the first
  # column-0 `}` (end of the enclosing function) after it.
  xargs -r awk '
    function settles(line, name) {
      return (line ~ ("(^|[^A-Za-z0-9_])" name "\\.(wait|result|abandon)[ \t]*\\(") \
              || line ~ ("std::move\\([ \t]*" name "[ \t]*\\)") \
              || line ~ ("(push_back|emplace_back)\\([ \t]*" name "([ \t]*\\)|,)") \
              || line ~ ("return[ \t]+" name "[ \t]*;"))
    }
    FNR == 1 { nh = 0 }
    {
      line = $0
      sub(/\/\/.*/, "", line)
      decl = ""
      if (line ~ /^[ \t]*(comm::)?CommHandle[ \t]+[A-Za-z_][A-Za-z0-9_]*[ \t]*=/) {
        decl = line
        sub(/^[ \t]*(comm::)?CommHandle[ \t]+/, "", decl)
      } else if (line ~ /^[ \t]*auto[ \t]+[A-Za-z_][A-Za-z0-9_]*[ \t]*=[^=].*\.i(all_reduce|all_gather|reduce_scatter|send|recv)[ \t]*\(/) {
        decl = line
        sub(/^[ \t]*auto[ \t]+/, "", decl)
      }
      if (decl != "" && line !~ /\.(wait|result|abandon)[ \t]*\(/) {
        sub(/[ \t]*=.*/, "", decl)
        nh++; hname[nh] = decl; hline[nh] = FNR; done[nh] = 0
      }
      for (i = 1; i <= nh; i++)
        if (!done[i] && FNR > hline[i] && settles(line, hname[i])) done[i] = 1
      if ($0 ~ /^}/) {
        for (i = 1; i <= nh; i++)
          if (!done[i])
            printf "%s:%d: CommHandle \x27%s\x27 never waited/result/abandoned\n", \
                   FILENAME, hline[i], hname[i]
        nh = 0
      }
    }
    END {
      for (i = 1; i <= nh; i++)
        if (!done[i])
          printf "%s:%d: CommHandle \x27%s\x27 never waited/result/abandoned\n", \
                 FILENAME, hline[i], hname[i]
    }
  '
}

match_raw_storage() {
  # Comment text and string literals are stripped before matching. The
  # vector<float> arm applies only inside src/ (tests/bench/examples
  # may use host-side float lists freely) and exempts the pool itself.
  xargs -r awk '
    {
      line = $0
      sub(/\/\/.*/, "", line)
      gsub(/"([^"\\]|\\.)*"/, "\"\"", line)
      hit = 0
      if (line ~ /(^|[^A-Za-z0-9_])new[ \t]+float[ \t]*\[/) hit = 1
      if (FILENAME ~ /(^|\/)src\// && FILENAME !~ /(^|\/)src\/(tensor|memory)\// \
          && line ~ /std::vector[ \t]*<[ \t]*float[ \t]*>/) hit = 1
      if (hit)
        printf "%s:%d: raw float buffer bypasses the pool allocator\n", \
               FILENAME, FNR
    }
  '
}

match_serve_raw_buffer() {
  # Stricter than raw-storage: also catches malloc/calloc and
  # byte-scale vectors, which in src/serve are per-sequence payloads
  # (KV, token scratch), not bookkeeping. Vectors of ids/indices/
  # doubles are fine.
  xargs -r awk '
    {
      line = $0
      sub(/\/\/.*/, "", line)
      gsub(/"([^"\\]|\\.)*"/, "\"\"", line)
      hit = 0
      if (line ~ /(^|[^A-Za-z0-9_])(malloc|calloc|realloc)[ \t]*\(/) hit = 1
      if (line ~ /(^|[^A-Za-z0-9_])new[ \t]+(float|char|unsigned[ \t]+char|(std::)?uint8_t)[ \t]*\[/) hit = 1
      if (line ~ /std::vector[ \t]*<[ \t]*(float|char|unsigned[ \t]+char|(std::)?uint8_t)[ \t]*>/) hit = 1
      if (hit)
        printf "%s:%d: per-request buffer allocated off the pool arena\n", \
               FILENAME, FNR
    }
  '
}

match_hot_permute() {
  # The autograd PermuteNode and comm-layer staging keep their generic
  # calls (their files are filtered out below); layers/models/pipeline
  # must use the specialized layout kernels.
  xargs -r grep -nE '\b(ops|ag)::permute[ \t]*\(' /dev/null 2>/dev/null |
    awk -F: '{printf "%s:%s: generic permute on a hot path\n", $1, $2}'
}

match_layers_direct_comm() {
  # The include is checked before string literals are blanked (it IS a
  # string); everything else is matched with comments/strings stripped.
  xargs -r awk '
    {
      line = $0
      sub(/\/\/.*/, "", line)
      if (line ~ /#include[ \t]*"core\/collectives\.h"/) {
        printf "%s:%d: layers must not include core/collectives.h (use env.plan())\n", \
               FILENAME, FNR
        next
      }
      gsub(/"([^"\\]|\\.)*"/, "\"\"", line)
      hit = 0
      if (line ~ /\.(i?all_reduce|i?all_gather|i?reduce_scatter|broadcast|barrier|i?send|i?recv)[ \t]*\(/) hit = 1
      if (line ~ /(^|[^A-Za-z0-9_])(copy_to_tensor_parallel|reduce_from_tensor_parallel|gather_from_sequence_parallel|scatter_to_sequence_parallel|sp_gathered_matmul)[ \t]*\(/) hit = 1
      if (hit)
        printf "%s:%d: direct collective call in layers; route it through the ParallelPlan\n", \
               FILENAME, FNR
    }
  '
}

# Per-rule file filter: which of the scanned files a rule looks at.
files_for_rule() {
  case "$1" in
    serve-raw-buffer) grep -E '(^|/)src/serve/' || true ;;
    hot-permute) grep -E '(^|/)src/(core|model|pipeline|train|runtime)/' || true ;;
    layers-direct-comm) grep -E '(^|/)src/core/layers' || true ;;
    *) cat ;;
  esac
}

# -------------------------------------------------------------- driver

# Drops hits whose reported source line carries the rule's
# lint:allow(...) suppression comment.
filter_suppressed() {
  local rule="$1" hit file line
  while IFS= read -r hit; do
    [ -z "$hit" ] && continue
    file="${hit%%:*}"
    line="${hit#*:}"
    line="${line%%:*}"
    if sed -n "${line}p" "$file" 2>/dev/null |
        grep -qF "lint:allow(${rule})"; then
      continue
    fi
    printf '%s\n' "$hit"
  done
}

run_rule() {
  local rule="$1" files hits
  files=$(printf '%s\n' "$FILES" | files_for_rule "$rule")
  [ -z "$files" ] && return 0
  hits=$(printf '%s\n' "$files" |
      "match_$(printf '%s' "$rule" | tr - _)" |
      filter_suppressed "$rule")
  [ -z "$hits" ] && return 0
  echo "lint: ${rule}: $(rule_rationale "$rule")"
  echo "      (suppress with // lint:allow(${rule}))"
  printf '%s\n' "$hits" | sed 's/^/  /'
  return 1
}

root="$(dirname "$0")/.."
only=""
while [ $# -gt 0 ]; do
  case "$1" in
    --list)
      while IFS= read -r name; do
        printf '%-18s %s\n' "$name" "$(rule_rationale "$name")"
      done < <(rule_names)
      exit 0
      ;;
    --only)
      only="$2"
      shift
      ;;
    --root)
      root="$2"
      shift
      ;;
    *)
      echo "usage: lint.sh [--list] [--only RULE] [--root DIR]" >&2
      exit 2
      ;;
  esac
  shift
done

cd "$root"
FILES=$(find src tests bench examples \( -name '*.cpp' -o -name '*.h' \) \
    2>/dev/null | sort)

status=0
while IFS= read -r name; do
  if [ -n "$only" ] && [ "$name" != "$only" ]; then continue; fi
  run_rule "$name" || status=1
done < <(rule_names)

if [ -n "$only" ] && ! rule_names | grep -qx "$only"; then
  echo "lint: unknown rule '$only' (see --list)" >&2
  exit 2
fi

if [ "$status" -eq 0 ]; then
  echo "lint: all checks clean."
fi
exit "$status"
