#!/usr/bin/env bash
# Custom greppable lint checks for hazards clang-tidy does not model in
# this codebase (thread-per-rank simulator; see DESIGN.md "Analysis
# layer"). Four checks, all heuristic but zero-noise on this repo:
#
#   raw-lock         — a bare `foo_mu.lock()` on a mutex-named variable.
#                      Locks must be held through std::lock_guard /
#                      std::unique_lock / std::scoped_lock so an
#                      exception (poisoned barrier, ledger mismatch)
#                      cannot leave a mutex locked forever.
#   comm-under-lock  — a blocking collective / p2p / barrier call made
#                      while a lock guard is live in the enclosing
#                      scope. A rank that blocks in a rendezvous while
#                      holding a lock deadlocks any peer that needs the
#                      same lock to reach its rendezvous.
#   unwaited-handle  — a named CommHandle that is never wait()ed,
#                      result()ed, abandon()ed, moved, stored, or
#                      returned before its scope ends. Dropped handles
#                      swallow errors from the async op (the runtime
#                      leak audit catches this dynamically; this is the
#                      static side).
#   raw-storage      — tensor-scale float buffers allocated outside the
#                      pool: `new float[...]` anywhere, or
#                      `std::vector<float>` inside src/ outside
#                      src/tensor + src/memory. All bulk float storage
#                      must come from Storage (the per-rank caching
#                      arena) so the pool's stats and high-water marks
#                      see every buffer. Tests/bench/examples may use
#                      vector<float> freely for host-side lists.
#   serve-raw-buffer — a per-request buffer in src/serve allocated off
#                      the pool: malloc/calloc, operator new[], or a
#                      byte/float std::vector. Serving state scales
#                      with concurrent sequences; KV blocks and decode
#                      scratch must be Tensors (pool-arena storage) so
#                      bench_serve's fragmentation and high-water
#                      numbers see every byte. Bookkeeping vectors of
#                      ids/indices/doubles are fine.
#   hot-permute      — an ops::permute / ag::permute call in the model
#                      hot path (src/core, src/model, src/pipeline,
#                      src/train, src/runtime). The generic permute is
#                      an element-at-a-time gather; hot-path layout
#                      changes should use the specialized blocked
#                      copies (ops::sbh_to_bhsd / bhsd_to_sbh) or a new
#                      specialized kernel in tensor/kernels.h.
#
# Suppress a deliberate instance with a comment on the offending line:
#   // lint:allow(raw-lock)
#   // lint:allow(comm-under-lock)
#   // lint:allow(unwaited-handle)
#   // lint:allow(raw-storage)
#   // lint:allow(serve-raw-buffer)
#   // lint:allow(hot-permute)
#
# Exits nonzero if any check fires. Pure bash+grep+awk: runs on the
# minimal container image, no clang tooling needed.
set -u

cd "$(dirname "$0")/.."

FILES=$(find src tests bench examples -name '*.cpp' -o -name '*.h' | sort)
status=0

# ------------------------------------------------------------ raw-lock
# Variables named *mu / *mutex / *mtx (with optional trailing _) must
# not be locked manually.
raw_lock=$(grep -nE '\b[A-Za-z_][A-Za-z0-9_]*(mu|mutex|mtx)_?\.lock\(\)' \
    $FILES /dev/null 2>/dev/null | grep -v 'lint:allow(raw-lock)' || true)
if [ -n "$raw_lock" ]; then
  echo "lint: raw mutex .lock() without a guard (use std::lock_guard;"
  echo "      suppress with // lint:allow(raw-lock)):"
  echo "$raw_lock" | sed 's/^/  /'
  status=1
fi

# ----------------------------------------------------- comm-under-lock
# Brace-depth scan: after a std::{lock_guard,unique_lock,scoped_lock}
# declaration, any blocking comm call before the guard's scope closes
# is flagged. Condvar waits are not comm calls and do not trip this.
comm_under_lock=$(awk '
  FNR == 1 { depth = 0; nlocks = 0 }
  {
    line = $0
    suppressed = (line ~ /lint:allow\(comm-under-lock\)/)
    sub(/\/\/.*/, "", line)
    gsub(/"([^"\\]|\\.)*"/, "\"\"", line)
    is_lock = (line ~ /std::(lock_guard|unique_lock|scoped_lock)[ \t]*</)
    is_comm = (line ~ /\.(all_reduce|all_gather|reduce_scatter|broadcast|barrier|recv|send)[ \t]*\(/ \
               || line ~ /\.arrive_and_wait[ \t]*\(/)
    if (is_comm && nlocks > 0 && !suppressed && !is_lock)
      printf "  %s:%d: blocking comm call while a lock guard is live\n", \
             FILENAME, FNR
    n = length(line)
    for (i = 1; i <= n; i++) {
      ch = substr(line, i, 1)
      if (ch == "{") depth++
      else if (ch == "}") {
        depth--
        while (nlocks > 0 && lockdepth[nlocks] > depth) nlocks--
      }
    }
    if (is_lock) { nlocks++; lockdepth[nlocks] = depth }
  }
' $FILES)
if [ -n "$comm_under_lock" ]; then
  echo "lint: blocking collective/p2p while holding a lock (deadlocks the"
  echo "      peer rank; suppress with // lint:allow(comm-under-lock)):"
  echo "$comm_under_lock"
  status=1
fi

# ----------------------------------------------------- unwaited-handle
# A `CommHandle name = ...` (or `auto name = c.i*(...)`) declaration
# must be settled — name.wait()/result()/abandon(), std::move(name),
# push_back/emplace_back(name), or `return name` — before the first
# column-0 `}` (end of the enclosing function) after it.
unwaited=$(awk '
  function settles(line, name) {
    return (line ~ ("(^|[^A-Za-z0-9_])" name "\\.(wait|result|abandon)[ \t]*\\(") \
            || line ~ ("std::move\\([ \t]*" name "[ \t]*\\)") \
            || line ~ ("(push_back|emplace_back)\\([ \t]*" name "([ \t]*\\)|,)") \
            || line ~ ("return[ \t]+" name "[ \t]*;"))
  }
  FNR == 1 { nh = 0 }
  {
    line = $0
    sub(/\/\/.*/, "", line)
    decl = ""
    if (line ~ /^[ \t]*(comm::)?CommHandle[ \t]+[A-Za-z_][A-Za-z0-9_]*[ \t]*=/) {
      decl = line
      sub(/^[ \t]*(comm::)?CommHandle[ \t]+/, "", decl)
    } else if (line ~ /^[ \t]*auto[ \t]+[A-Za-z_][A-Za-z0-9_]*[ \t]*=[^=].*\.i(all_reduce|all_gather|reduce_scatter|send|recv)[ \t]*\(/) {
      decl = line
      sub(/^[ \t]*auto[ \t]+/, "", decl)
    }
    if (decl != "" && $0 !~ /lint:allow\(unwaited-handle\)/ \
        && line !~ /\.(wait|result|abandon)[ \t]*\(/) {
      sub(/[ \t]*=.*/, "", decl)
      nh++; hname[nh] = decl; hline[nh] = FNR; done[nh] = 0
    }
    for (i = 1; i <= nh; i++)
      if (!done[i] && FNR > hline[i] && settles(line, hname[i])) done[i] = 1
    if ($0 ~ /^}/) {
      for (i = 1; i <= nh; i++)
        if (!done[i])
          printf "  %s:%d: CommHandle \x27%s\x27 never waited/result/abandoned\n", \
                 FILENAME, hline[i], hname[i]
      nh = 0
    }
  }
  END {
    for (i = 1; i <= nh; i++)
      if (!done[i])
        printf "  %s:%d: CommHandle \x27%s\x27 never waited/result/abandoned\n", \
               FILENAME, hline[i], hname[i]
  }
' $FILES)
if [ -n "$unwaited" ]; then
  echo "lint: CommHandle dropped without wait()/result()/abandon() (errors"
  echo "      from the async op are lost; suppress with"
  echo "      // lint:allow(unwaited-handle)):"
  echo "$unwaited"
  status=1
fi

# --------------------------------------------------------- raw-storage
# Bulk float storage must come from the pool (tensor/storage.h). Comment
# text and string literals are stripped before matching.
raw_storage=$(awk '
  {
    line = $0
    suppressed = (line ~ /lint:allow\(raw-storage\)/)
    sub(/\/\/.*/, "", line)
    gsub(/"([^"\\]|\\.)*"/, "\"\"", line)
    hit = 0
    if (line ~ /(^|[^A-Za-z0-9_])new[ \t]+float[ \t]*\[/) hit = 1
    if (FILENAME ~ /^src\// && FILENAME !~ /^src\/(tensor|memory)\// \
        && line ~ /std::vector[ \t]*<[ \t]*float[ \t]*>/) hit = 1
    if (hit && !suppressed)
      printf "  %s:%d: raw float buffer bypasses the pool allocator\n", \
             FILENAME, FNR
  }
' $FILES)
if [ -n "$raw_storage" ]; then
  echo "lint: raw float storage outside src/tensor + src/memory (allocate"
  echo "      through Tensor/Storage so the arena accounts for it;"
  echo "      suppress with // lint:allow(raw-storage)):"
  echo "$raw_storage"
  status=1
fi

# ---------------------------------------------------- serve-raw-buffer
# Per-request serving state bypassing the pool arena. Stricter than
# raw-storage: also catches malloc/calloc and byte-scale vectors, which
# in src/serve are per-sequence payloads (KV, token scratch), not
# bookkeeping.
serve_files=$(echo "$FILES" | grep -E '^src/serve/' || true)
serve_raw=""
if [ -n "$serve_files" ]; then
  serve_raw=$(awk '
    {
      line = $0
      suppressed = (line ~ /lint:allow\(serve-raw-buffer\)/)
      sub(/\/\/.*/, "", line)
      gsub(/"([^"\\]|\\.)*"/, "\"\"", line)
      hit = 0
      if (line ~ /(^|[^A-Za-z0-9_])(malloc|calloc|realloc)[ \t]*\(/) hit = 1
      if (line ~ /(^|[^A-Za-z0-9_])new[ \t]+(float|char|unsigned[ \t]+char|(std::)?uint8_t)[ \t]*\[/) hit = 1
      if (line ~ /std::vector[ \t]*<[ \t]*(float|char|unsigned[ \t]+char|(std::)?uint8_t)[ \t]*>/) hit = 1
      if (hit && !suppressed)
        printf "  %s:%d: per-request buffer allocated off the pool arena\n", \
               FILENAME, FNR
    }
  ' $serve_files)
fi
if [ -n "$serve_raw" ]; then
  echo "lint: raw per-request buffer in src/serve (KV blocks and decode"
  echo "      scratch must be Tensors so the arena and bench_serve account"
  echo "      for them; suppress with // lint:allow(serve-raw-buffer)):"
  echo "$serve_raw"
  status=1
fi

# --------------------------------------------------------- hot-permute
# Generic permute on the model hot path. The autograd PermuteNode and
# comm-layer staging keep their generic calls (not matched: they live
# in src/autograd and src/comm); layers/models/pipeline must use the
# specialized layout kernels.
hot_permute=$(grep -nE '\b(ops|ag)::permute[ \t]*\(' \
    $(echo "$FILES" | grep -E '^src/(core|model|pipeline|train|runtime)/' || true) \
    /dev/null 2>/dev/null | grep -v 'lint:allow(hot-permute)' || true)
if [ -n "$hot_permute" ]; then
  echo "lint: generic permute on a hot path (use the specialized layout"
  echo "      kernels in tensor/kernels.h, e.g. ops::sbh_to_bhsd;"
  echo "      suppress with // lint:allow(hot-permute)):"
  echo "$hot_permute" | sed 's/^/  /'
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "lint: all checks clean."
fi
exit "$status"
